//! Chaos testing: random fault plans against random scenarios.
//!
//! Each chaos case draws one [`Scenario`] plus one random
//! [`FaultPlan`] from a single case seed, installs the plan, and drives
//! the workspace's hardened paths — the checked sweep engine, the
//! budgeted simulator, and atomic artifact persistence — asserting the
//! structured-degradation contract instead of correct *values* (injected
//! corruption makes values wrong by construction):
//!
//! 1. **no abort** — injected worker panics are isolated per grid point;
//!    the sweep returns with every other point evaluated;
//! 2. **full accounting** — the [`SweepHealth`] ledger exactly tallies
//!    the outcomes: `ok + degraded + failed` covers the grid, `failed`
//!    matches the failed outcomes, `non_finite` matches the non-finite
//!    fields actually present, and nothing non-finite goes uncounted;
//! 3. **no hang** — every plan carries a `sim/budget` override, so the
//!    simulator's watchdog bounds the event loop regardless of scenario;
//! 4. **artifacts round-trip or don't exist** — a figure save under
//!    injected I/O faults either lands complete (parses back equal) or
//!    fails leaving nothing behind, never a truncated file;
//! 5. **determinism** — re-running the same case seed reproduces the
//!    health ledger and every outcome bit pattern;
//! 6. **cache transparency** — the persistent value-table cache under
//!    injected load/store I/O faults degrades to recompute: cold and
//!    warm cached sweeps reproduce the uncached sweep bit for bit, and
//!    absorbed faults only ever cost time, never numbers.
//!
//! Invariants 1, 2 and 6 run once per **registered kernel backend**
//! (`bevra_engine::registry::backends()`): each backend's checked sweep
//! must account exactly, and each grid-priming backend's cached sweeps
//! must reproduce *that backend's* uncached sweep bit for bit. A backend
//! added to the registry later gets this coverage automatically.
//!
//! The driver is [`run_case`]; the `check-chaos` binary loops it over a
//! fixed-seed prefix plus a time-boxed randomized tail, and the
//! workspace's `tests/chaos.rs` pins a handful of seeds as acceptance
//! tests.
//!
//! [`SweepHealth`]: bevra_engine::SweepHealth

use crate::scenario::{Scenario, ScenarioStrategy};
use crate::strategy::Strategy;
use bevra_core::DiscreteModel;
use bevra_engine::{CacheMode, CheckedSweep, PersistentCache, PointOutcome, SweepEngine};
use bevra_faults::{install, FaultKind, FaultPlan, FaultRule, PANIC_MARKER};
use bevra_report::persist::{load_figure, save_figure};
use bevra_report::series::{Figure, Panel, Series};
use bevra_sim::{
    ckpt::FleetCheckpoint, Discipline, Fleet, FleetConfig, HoldingDist, MixedPoisson,
    QueueKind, SimConfig, SimError, Simulation,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Grid points per chaos sweep — enough for panic isolation to have
/// neighbours to spare, small enough to keep cases fast.
const GRID: usize = 12;

/// Fault sites a random plan may target, with the kinds that make sense
/// there. Probabilities are kept moderate so most cases mix healthy and
/// faulty points rather than failing wall-to-wall.
fn random_rules(rng: &mut StdRng) -> Vec<FaultRule> {
    let mut rules = Vec::new();
    if rng.random::<f64>() < 0.7 {
        rules.push(FaultRule::with_prob(
            FaultKind::Panic,
            "engine/point",
            0.05 + 0.25 * rng.random::<f64>(),
        ));
    }
    if rng.random::<f64>() < 0.6 {
        let kind = if rng.random::<bool>() { FaultKind::Nan } else { FaultKind::Inf };
        let site = if rng.random::<bool>() { "eval/best_effort" } else { "eval/reservation" };
        rules.push(FaultRule::with_prob(kind, site, 0.05 + 0.3 * rng.random::<f64>()));
    }
    if rng.random::<f64>() < 0.4 {
        // `/num` prefix-matches every root-finder and quadrature site.
        rules.push(FaultRule::with_prob(FaultKind::NumErr, "/num", 0.1 * rng.random::<f64>()));
    }
    if rng.random::<f64>() < 0.5 {
        rules.push(FaultRule::with_prob(
            FaultKind::IoTransient,
            "io/report",
            0.3 + 0.5 * rng.random::<f64>(),
        ));
    }
    if rng.random::<f64>() < 0.25 {
        rules.push(FaultRule::always(FaultKind::IoPermanent, "io/report/figure"));
    }
    // Persistent value-table cache: transient faults hit load and store
    // alike (prefix match), permanent faults kill stores outright. Both
    // must degrade to recompute, never to a wrong number or an abort.
    if rng.random::<f64>() < 0.5 {
        rules.push(FaultRule::with_prob(
            FaultKind::IoTransient,
            "io/cache",
            0.3 + 0.6 * rng.random::<f64>(),
        ));
    }
    if rng.random::<f64>() < 0.25 {
        rules.push(FaultRule::always(FaultKind::IoPermanent, "io/cache/store"));
    }
    rules
}

/// Draw the random fault plan for one case: the site rules above plus an
/// unconditional `sim/budget` watchdog override (invariant 3 needs every
/// simulated case bounded).
pub fn random_plan(rng: &mut StdRng) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.random::<u64>());
    for rule in random_rules(rng) {
        plan = plan.rule(rule);
    }
    plan.rule(
        FaultRule::always(FaultKind::Budget, "sim/budget")
            .with_n(2_000 + rng.random_range(0..8_000u64)),
    )
}

/// Throughput counters one [`run_case`] accumulates (for the chaos
/// binary's end-of-run summary).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStats {
    /// Grid points evaluated across both sweeps.
    pub points: u64,
    /// Points that failed (isolated panics).
    pub failed: u64,
    /// Points that degraded (counted non-finite corruption).
    pub degraded: u64,
    /// Simulator events processed before the watchdog or horizon.
    pub sim_events: u64,
    /// Artifact saves attempted / failed under injected I/O faults.
    pub saves: u64,
    /// Artifact saves that failed (and verifiably left nothing behind).
    pub save_failures: u64,
    /// Persistent-cache sweeps compared against the uncached baseline.
    pub cache_sweeps: u64,
    /// Persistent-cache load/store attempts absorbed as I/O failures
    /// (each degraded to a recompute or a skipped store).
    pub cache_io_errors: u64,
    /// Fleet lane re-executions performed by recovery supervisors.
    pub lane_restarts: u64,
    /// Recovery-breaker trips across fleet cases.
    pub fleet_breaker_trips: u64,
    /// Lanes rescued to bitwise-identical reports after transient faults.
    pub rescued_lanes: u64,
    /// Lanes correctly declared dead under permanent faults.
    pub dead_lanes: u64,
}

/// Non-finite fields of one evaluated point (the four derived quantities;
/// the capacity input is never corrupted).
fn non_finite_fields(p: &bevra_engine::SweepPoint) -> u64 {
    [p.best_effort, p.reservation, p.performance_gap, p.bandwidth_gap]
        .iter()
        .filter(|v| !v.is_finite())
        .count() as u64
}

/// Check the full-accounting invariant of one checked sweep (invariants
/// 1 and 2 above).
fn check_accounting(what: &str, grid_len: usize, checked: &CheckedSweep) -> Result<(), String> {
    let h = &checked.health;
    if checked.outcomes.len() != grid_len {
        return Err(format!(
            "{what}: {} outcomes for {grid_len} grid points",
            checked.outcomes.len()
        ));
    }
    let failed = checked.outcomes.iter().filter(|o| o.point().is_none()).count() as u64;
    let mut clean = 0u64;
    let mut tainted = 0u64;
    let mut non_finite = 0u64;
    for o in &checked.outcomes {
        if let Some(p) = o.point() {
            let nf = non_finite_fields(p);
            non_finite += nf;
            if nf == 0 {
                clean += 1;
            } else {
                tainted += 1;
            }
        }
    }
    if h.total() != grid_len as u64 {
        return Err(format!("{what}: health covers {} of {grid_len} points", h.total()));
    }
    if h.failed != failed {
        return Err(format!("{what}: health.failed {} vs {failed} failed outcomes", h.failed));
    }
    if h.non_finite != non_finite {
        return Err(format!(
            "{what}: health.non_finite {} vs {non_finite} non-finite fields present — \
             corruption went unaccounted",
            h.non_finite
        ));
    }
    if h.ok != clean || h.degraded != tainted {
        return Err(format!(
            "{what}: health ok/degraded {}/{} vs observed {clean}/{tainted}",
            h.ok, h.degraded
        ));
    }
    if !h.is_clean() && h.first_failure.is_none() {
        return Err(format!("{what}: dirty health carries no first_failure cause"));
    }
    Ok(())
}

/// Bit-exact fingerprint of a sweep's outcomes (PartialEq can't compare
/// NaN-carrying points).
fn outcome_bits(checked: &CheckedSweep) -> Vec<u64> {
    let mut bits = Vec::new();
    for o in &checked.outcomes {
        match o {
            PointOutcome::Ok(p) => {
                bits.push(1);
                for v in [p.capacity, p.best_effort, p.reservation, p.performance_gap, p.bandwidth_gap]
                {
                    bits.push(v.to_bits());
                }
            }
            PointOutcome::Failed { index, .. } => {
                bits.push(2);
                bits.push(*index as u64);
            }
        }
    }
    bits
}

/// The figure JSON round-trip contract for one value: finite values come
/// back bit-exact; non-finite values (JSON has no NaN/Inf) serialize as
/// `null` and come back as NaN.
fn value_roundtrips(saved: f64, loaded: f64) -> bool {
    saved.to_bits() == loaded.to_bits() || (!saved.is_finite() && loaded.is_nan())
}

/// Structural + value equality of a saved figure against its parsed-back
/// form, under the documented non-finite round-trip contract.
fn figure_roundtrips(saved: &Figure, loaded: &Figure) -> Result<(), String> {
    if saved.id != loaded.id || saved.caption != loaded.caption {
        return Err("id/caption diverged".into());
    }
    if saved.panels.len() != loaded.panels.len() {
        return Err("panel count diverged".into());
    }
    for (sp, lp) in saved.panels.iter().zip(&loaded.panels) {
        if (sp.title.as_str(), sp.xlabel.as_str(), sp.ylabel.as_str())
            != (lp.title.as_str(), lp.xlabel.as_str(), lp.ylabel.as_str())
            || sp.series.len() != lp.series.len()
        {
            return Err(format!("panel '{}' structure diverged", sp.title));
        }
        for (ss, ls) in sp.series.iter().zip(&lp.series) {
            if ss.label != ls.label || ss.x.len() != ls.x.len() || ss.y.len() != ls.y.len() {
                return Err(format!("series '{}' structure diverged", ss.label));
            }
            for (&a, &b) in ss.x.iter().zip(&ls.x).chain(ss.y.iter().zip(&ls.y)) {
                if !value_roundtrips(a, b) {
                    return Err(format!("series '{}': {a:?} came back as {b:?}", ss.label));
                }
            }
        }
    }
    Ok(())
}

/// The chaos capacity grid: [`GRID`] evenly spaced points spanning the
/// scenario's drawn capacities (degenerate span widens to ±25%).
fn grid(sc: &Scenario) -> Vec<f64> {
    let lo = sc.capacities.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sc.capacities.iter().copied().fold(1.0f64, f64::max);
    let (lo, hi) = if hi - lo < 1e-9 { (lo * 0.75, lo * 1.25 + 1.0) } else { (lo, hi) };
    (0..GRID).map(|i| lo + (hi - lo) * i as f64 / (GRID - 1) as f64).collect()
}

/// Run one chaos case end to end. Returns throughput counters, or a
/// description of the violated invariant.
///
/// The case seed fully determines the scenario, the fault plan, and every
/// injection decision, so a reported seed is a complete reproduction.
///
/// # Errors
///
/// The first violated invariant, as a human-readable string naming the
/// case seed.
pub fn run_case(case_seed: u64) -> Result<ChaosStats, String> {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let sc = ScenarioStrategy::default().generate(&mut rng);
    let plan = random_plan(&mut rng);
    let fail = |msg: String| format!("chaos case {case_seed}: {msg}");

    let load =
        sc.loads[0].tabulate().map_err(|e| fail(format!("untestable load family: {e}")))?;
    let utility = sc.utility.as_dyn();
    let cs = grid(&sc);
    let mut stats = ChaosStats::default();

    let _guard = install(plan);

    // Arm the flight recorder's black box for this case (callers install
    // `silence_injected_panics` first, so the blackbox hook — chained
    // later — still sees every injected panic). Each panic the sweep
    // isolates drains the recorder's last events to
    // `<tmp>/bevra-chaos-blackbox/chaos-<seed>-blackbox.jsonl`: a failing
    // scenario always ships a post-mortem artifact.
    bevra_obs::recorder::arm_blackbox(
        &format!("chaos-{case_seed}"),
        &std::env::temp_dir().join("bevra-chaos-blackbox"),
    );

    // Invariants 1 + 2: the checked sweep completes under injected
    // panics and corruption, with exact accounting.
    let engine = SweepEngine::new(DiscreteModel::new(load.clone(), Arc::clone(&utility)));
    let checked = engine.sweep_checked(&cs);
    check_accounting("sweep", cs.len(), &checked).map_err(&fail)?;
    stats.points += checked.health.total();
    stats.failed += checked.health.failed;
    stats.degraded += checked.health.degraded;

    // Invariants 1 + 2 + 6, per registered backend. Every backend's
    // checked sweep must complete with exact accounting, and for every
    // grid-priming backend the persistent value-table cache must be
    // transparent under the active plan: injection decisions are pure
    // functions of (plan seed, site, key), so a cold cached sweep
    // (compute + store, possibly fault-blocked) and a warm cached sweep
    // (load, possibly degraded to recompute) must both reproduce that
    // same backend's uncached sweep bit for bit.
    for kernel in bevra_engine::registry::backends() {
        let cap = kernel.capability();
        let uncached = SweepEngine::new(DiscreteModel::new(load.clone(), Arc::clone(&utility)))
            .with_kernel(kernel);
        let base = uncached.sweep_checked(&cs);
        check_accounting(&format!("sweep[{}]", cap.name), cs.len(), &base).map_err(&fail)?;
        if base.health.kernel.as_deref() != Some(cap.name) {
            return Err(fail(format!(
                "sweep[{}]: health ledger stamped {:?}",
                cap.name, base.health.kernel
            )));
        }
        stats.points += base.health.total();
        stats.failed += base.health.failed;
        stats.degraded += base.health.degraded;
        if !cap.grid_priming {
            continue;
        }
        let cache_dir = std::env::temp_dir()
            .join(format!("bevra-chaos-cache-{case_seed}-{}", cap.name));
        let _ = std::fs::remove_dir_all(&cache_dir);
        for pass in ["cold", "warm"] {
            let cached =
                SweepEngine::new(DiscreteModel::new(load.clone(), Arc::clone(&utility)))
                    .with_kernel(kernel)
                    .with_persistent_cache(PersistentCache::new(&cache_dir, CacheMode::ReadWrite));
            let swept = cached.sweep_checked(&cs);
            if outcome_bits(&swept) != outcome_bits(&base) {
                return Err(fail(format!(
                    "{pass} cached sweep[{}] diverged from uncached bitwise",
                    cap.name
                )));
            }
            stats.cache_sweeps += 1;
            stats.cache_io_errors += cached
                .persistent_cache()
                .map_or(0, bevra_engine::PersistentCache::io_errors);
        }
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    // Invariant 5: an identical engine under the identical plan (the
    // guard is still installed — trip decisions are pure functions of the
    // plan seed and stable keys) reproduces health and outcome bits.
    let replay = SweepEngine::new(DiscreteModel::new(load, utility)).sweep_checked(&cs);
    if replay.health != checked.health {
        return Err(fail(format!(
            "replay health diverged: {} vs {}",
            replay.health, checked.health
        )));
    }
    if outcome_bits(&replay) != outcome_bits(&checked) {
        return Err(fail("replay outcomes diverged bitwise".into()));
    }

    // Invariant 3: the watchdog override bounds the event loop.
    let sim_cfg = SimConfig {
        capacity: cs[cs.len() / 2].max(2.0),
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(sc.loads[0].mean().min(30.0)),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: sc.utility.as_dyn(),
        warmup: 10.0,
        horizon: 1.0e9, // absurd on purpose: only the watchdog ends this
        seed: case_seed,
        max_events: None,
    };
    match Simulation::new(sim_cfg).run_checked() {
        Ok(_) => return Err(fail("simulator outran an injected 10k-event budget".into())),
        Err(SimError::DeadlineExpired { .. }) => {
            return Err(fail("deadline expired with no deadline armed".into()))
        }
        Err(SimError::BudgetExhausted { events, partial }) => {
            if events >= 10_000 {
                return Err(fail(format!("watchdog fired late: {events} events")));
            }
            stats.sim_events += events;
            // The partial report must be internally consistent.
            if partial.completed > partial.attempts {
                return Err(fail(format!(
                    "partial report inconsistent: {} completed of {} attempts",
                    partial.completed, partial.attempts
                )));
            }
        }
    }

    // Invariant 4: artifact persistence is atomic under injected I/O
    // faults — round-trip or nothing.
    let fig = Figure {
        id: format!("chaos-{case_seed}"),
        caption: "chaos artifact".into(),
        panels: vec![Panel {
            title: "sweep".into(),
            xlabel: "C".into(),
            ylabel: "B".into(),
            series: vec![Series::new(
                "best_effort",
                cs.clone(),
                checked
                    .outcomes
                    .iter()
                    .map(|o| o.point().map_or(f64::NAN, |p| p.best_effort))
                    .collect(),
            )],
        }],
    };
    let dir = std::env::temp_dir().join(format!("bevra-chaos-{case_seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    stats.saves += 1;
    match save_figure(&fig, &dir) {
        Ok(path) => {
            let back = load_figure(&path)
                .map_err(|e| fail(format!("saved artifact failed to parse back: {e}")))?;
            figure_roundtrips(&fig, &back)
                .map_err(|e| fail(format!("saved artifact round-tripped unequal: {e}")))?;
        }
        Err(_) => {
            stats.save_failures += 1;
            let leftovers = std::fs::read_dir(&dir)
                .map(|it| it.count())
                .unwrap_or(0);
            if leftovers != 0 {
                return Err(fail(format!(
                    "failed save left {leftovers} partial file(s) in {}",
                    dir.display()
                )));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(stats)
}

/// Run one *recovery* chaos case: the resilience-runtime invariants over
/// a randomly shaped fleet. Three phases, all derived from `case_seed`:
///
/// 1. **transient faults are rescued bitwise** — a plan of `n`-bounded
///    lane panics (plus optional shard panics, which per-lane recovery
///    always bypasses) must yield a merged digest bitwise-equal to the
///    fault-free run, with every restart ledgered in `FleetHealth`;
/// 2. **permanent faults degrade, never abort** — permanently dead lanes
///    are declared dead one by one, every surviving lane's digest is
///    untouched, and sustained death is visible in the breaker ledger;
/// 3. **kill/resume is bitwise** — a run killed at the `sim/fleet-ckpt`
///    site resumes from its checkpoint to the exact fault-free digest.
///
/// Callers install [`silence_injected_panics`] first.
///
/// # Errors
///
/// The first violated invariant, naming the case seed.
#[allow(clippy::too_many_lines)]
pub fn run_recovery_case(case_seed: u64) -> Result<ChaosStats, String> {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let fail = |msg: String| format!("recovery case {case_seed}: {msg}");
    let lanes = 4 + rng.random_range(0..5u64) as u32; // 4..=8
    let shards = 1 + rng.random_range(0..u64::from(lanes)) as usize;
    let cfg = FleetConfig {
        base: SimConfig {
            capacity: 20.0 + 10.0 * rng.random::<f64>(),
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::fixed(15.0 + 10.0 * rng.random::<f64>()),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(bevra_utility::AdaptiveExp::paper()),
            warmup: 10.0,
            horizon: 120.0,
            seed: case_seed,
            max_events: None,
        },
        lanes,
    };
    let mut stats = ChaosStats::default();
    let fleet = Fleet::new(cfg.clone());
    let reference = fleet.run_on(shards, QueueKind::Wheel);
    if !reference.health.all_ok() {
        return Err(fail("fault-free reference run was not clean".into()));
    }

    // Phase 1: transient-only plan. Every targeted lane panics on its
    // first `n` attempts and must be restarted to its exact bits.
    let targets = 1 + rng.random_range(0..3u64) as usize;
    let mut plan = FaultPlan::seeded(rng.random::<u64>());
    for _ in 0..targets {
        let lane = rng.random_range(0..u64::from(lanes));
        let n = 1 + rng.random_range(0..2u64); // within the default retry budget
        plan = plan.rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", lane).with_n(n));
    }
    if rng.random::<f64>() < 0.5 {
        // Shard-site panics are always rescuable: recovery re-runs lanes
        // individually and never crosses `sim/shard`.
        plan = plan.rule(FaultRule::with_prob(
            FaultKind::Panic,
            "sim/shard",
            0.2 + 0.5 * rng.random::<f64>(),
        ));
    }
    let rescued = {
        let _guard = install(plan);
        fleet.run_on(shards, QueueKind::Wheel)
    };
    if !rescued.health.all_ok() {
        return Err(fail(format!(
            "transient-only plan was not fully rescued: {:?}",
            rescued.health.failed
        )));
    }
    if rescued.merged.digest() != reference.merged.digest() {
        return Err(fail("rescued fleet digest diverged from the fault-free run".into()));
    }
    if rescued.health.restarts == 0 {
        return Err(fail("transient lane faults fired but no restart was ledgered".into()));
    }
    stats.lane_restarts += rescued.health.restarts;
    stats.fleet_breaker_trips += rescued.health.breaker_trips;
    stats.rescued_lanes += u64::from(rescued.health.ok_lanes);

    // Phase 2: permanent lane deaths. The targeted lanes stay dead;
    // everyone else is bitwise-untouched; nothing aborts.
    let dead_count = 1 + rng.random_range(0..u64::from(lanes) - 1) as u32;
    let mut dead: Vec<u32> = Vec::new();
    let mut plan = FaultPlan::seeded(rng.random::<u64>());
    while (dead.len() as u32) < dead_count {
        let lane = rng.random_range(0..u64::from(lanes)) as u32;
        if !dead.contains(&lane) {
            dead.push(lane);
            plan =
                plan.rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", u64::from(lane)));
        }
    }
    let degraded = {
        let _guard = install(plan);
        fleet.run_on(shards, QueueKind::Wheel)
    };
    if degraded.health.failed_lanes() < dead.len() as u32 {
        return Err(fail(format!(
            "{} permanently faulted lane(s) but health says only {} failed",
            dead.len(),
            degraded.health.failed_lanes()
        )));
    }
    for lane in 0..lanes as usize {
        if dead.contains(&(lane as u32)) {
            if degraded.lane_digests[lane].is_some() {
                return Err(fail(format!(
                    "lane {lane} is permanently faulted but still produced a report"
                )));
            }
        } else if let Some(digest) = degraded.lane_digests[lane] {
            if Some(digest) != reference.lane_digests[lane] {
                return Err(fail(format!(
                    "surviving lane {lane} digest diverged from the fault-free run"
                )));
            }
        } else {
            // A healthy lane with no report must have been shed by the
            // open breaker (fail-fast after sustained death), and the
            // failure entry must say so — never a silent drop.
            let shed = degraded.health.failed.iter().any(|f| {
                f.lanes.contains(&(lane as u32)) && f.error.contains("breaker open")
            });
            if !shed {
                return Err(fail(format!(
                    "healthy lane {lane} went missing without a breaker-open record"
                )));
            }
        }
    }
    if degraded.health.restarts == 0 {
        return Err(fail("permanent deaths recorded no restart attempts".into()));
    }
    stats.lane_restarts += degraded.health.restarts;
    stats.fleet_breaker_trips += degraded.health.breaker_trips;
    stats.dead_lanes += u64::from(degraded.health.failed_lanes());

    // Phase 3: kill mid-run at the checkpoint site, resume, compare
    // digests. Group 0's checkpoint always lands before the kill fires.
    let ckpt_dir =
        std::env::temp_dir().join(format!("bevra-chaos-recovery-{case_seed}"));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let plan = FaultPlan::seeded(0)
        .rule(FaultRule::at_key(FaultKind::Panic, "sim/fleet-ckpt", 0));
    let killed = {
        let _guard = install(plan);
        let doomed = Fleet::new(cfg.clone())
            .with_checkpoint(FleetCheckpoint::new(&ckpt_dir, CacheMode::ReadWrite));
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            doomed.run_on(shards, QueueKind::Wheel)
        }))
    };
    if killed.is_ok() {
        return Err(fail("the fleet-ckpt kill site did not abort the run".into()));
    }
    let resumed_fleet = Fleet::new(cfg)
        .with_checkpoint(FleetCheckpoint::new(&ckpt_dir, CacheMode::ReadWrite));
    let resumed = resumed_fleet.run_on(shards, QueueKind::Wheel);
    let restored = resumed_fleet
        .checkpoint_store()
        .map_or(0, bevra_sim::ckpt::FleetCheckpoint::restored_lanes);
    if restored == 0 {
        return Err(fail("resume restored nothing from the checkpoint".into()));
    }
    if resumed.merged.digest() != reference.merged.digest() {
        return Err(fail("resumed fleet digest diverged from the uninterrupted run".into()));
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    stats.rescued_lanes += restored;
    Ok(stats)
}

/// Merge per-case counters.
impl std::ops::AddAssign for ChaosStats {
    fn add_assign(&mut self, o: Self) {
        self.points += o.points;
        self.failed += o.failed;
        self.degraded += o.degraded;
        self.sim_events += o.sim_events;
        self.saves += o.saves;
        self.save_failures += o.save_failures;
        self.cache_sweeps += o.cache_sweeps;
        self.cache_io_errors += o.cache_io_errors;
        self.lane_restarts += o.lane_restarts;
        self.fleet_breaker_trips += o.fleet_breaker_trips;
        self.rescued_lanes += o.rescued_lanes;
        self.dead_lanes += o.dead_lanes;
    }
}

/// Silence the default panic hook for *injected* panics only (their
/// payload carries [`PANIC_MARKER`]): a chaos run isolates hundreds of
/// intentional panics, and each would otherwise dump a backtrace banner
/// to stderr. Real panics keep the full default report.
///
/// Installs once per process; callers other than the chaos binary and
/// the chaos acceptance tests should not need it.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.contains(PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan generator always arms the simulator watchdog and stays
    /// within the probability bounds the invariants assume.
    #[test]
    fn random_plans_always_carry_a_sim_budget() {
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = random_plan(&mut rng);
            assert!(
                plan.count_for(FaultKind::Budget, "sim/budget").is_some_and(|n| n < 10_000),
                "seed {seed}: no bounded sim/budget rule"
            );
        }
    }

    /// Accounting checker rejects a cooked ledger.
    #[test]
    fn accounting_checker_catches_miscounts() {
        let mut checked = CheckedSweep {
            outcomes: vec![PointOutcome::Failed {
                capacity: 1.0,
                index: 0,
                cause: "x".into(),
            }],
            health: bevra_engine::SweepHealth::new(),
        };
        checked.health.note_ok(); // lies: the one outcome failed
        let err = check_accounting("t", 1, &checked).expect_err("must reject");
        assert!(err.contains("health.failed"), "{err}");
    }
}
