//! Time-boxed randomized differential sweep.
//!
//! Runs the scenario oracle (`bevra_check::check_scenario`, plus the
//! Monte Carlo rung on a subsample of cases) in a loop until a time
//! budget is exhausted, then reports throughput. On a falsified property
//! the process panics with the shrunk counterexample and appends a replay
//! record to `results/check-failures.jsonl` — exactly like the in-tree
//! property tests, but unbounded by a fixed case count.
//!
//! ```text
//! cargo run --release -p bevra-check --bin check-sweep -- \
//!     [--seconds N] [--seed S] [--no-sim]
//! ```
//!
//! The seed defaults to a clock-derived value (printed, so any run can be
//! reproduced with `--seed`); CI pins it for stability.

use bevra_check::{check_scenario, check_scenario_sim, Checker, ScenarioStrategy};
use std::time::Duration;

/// Simulate every n-th case: the Monte Carlo rung costs ~100× the
/// analytic rungs, so sampling keeps sweep throughput useful while still
/// exercising the simulator continuously.
const SIM_EVERY: u64 = 8;

fn usage() -> ! {
    eprintln!("usage: check-sweep [--seconds N] [--seed S] [--no-sim]");
    std::process::exit(2);
}

fn main() {
    let mut seconds = 60u64;
    let mut seed: Option<u64> = None;
    let mut sim = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                seed = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--no-sim" => sim = false,
            _ => usage(),
        }
    }
    let seed = seed.unwrap_or_else(|| {
        // Clock-derived default so repeated sweeps explore new ground.
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
    });
    println!(
        "check-sweep: budget {seconds}s, master seed {seed} ({seed:#x}), sim rung every \
         {SIM_EVERY} cases{}",
        if sim { "" } else { " (disabled)" }
    );

    let strategy = ScenarioStrategy::default();
    let checker = Checker::new("check-sweep").seed(seed);
    let case = std::cell::Cell::new(0u64);
    let started = std::time::Instant::now();
    let cases = checker.run_timeboxed(
        &strategy,
        |sc| {
            let i = case.get();
            case.set(i + 1);
            check_scenario(sc)?;
            if sim && i.is_multiple_of(SIM_EVERY) {
                // Derive the sim seed from the master so the whole case is
                // reproducible from the printed seed alone.
                check_scenario_sim(sc, rand::derive_seed(seed, (1u64 << 32) | i))?;
            }
            Ok(())
        },
        Duration::from_secs(seconds),
    );
    let elapsed = started.elapsed();
    println!(
        "check-sweep: {cases} scenarios in {:.1}s ({:.1}/s), no counterexample",
        elapsed.as_secs_f64(),
        cases as f64 / elapsed.as_secs_f64().max(1e-9),
    );
}
