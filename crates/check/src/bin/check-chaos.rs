//! Chaos sweep: random fault plans against random scenarios.
//!
//! Two phases, mirroring the CI job:
//!
//! 1. a **fixed-seed prefix** (`--cases N`, default 24, seeds `base..base+N`)
//!    so every run — and every CI run — revisits a stable corpus;
//! 2. a **time-boxed randomized tail** (`--seconds S`, default 20) whose
//!    clock-derived seeds explore new ground; each seed is printed on
//!    failure, and any seed reproduces its whole case.
//!
//! Every case installs a random fault plan (injected panics, NaN/Inf
//! corruption, forced solver errors, I/O faults, a simulator watchdog
//! override) and asserts the structured-degradation invariants — see
//! [`bevra_check::chaos`]. Exit status 0 means no invariant was violated.
//!
//! ```text
//! cargo run --release -p bevra-check --bin check-chaos -- \
//!     [--cases N] [--seconds S] [--seed BASE]
//! ```

use bevra_check::chaos::{run_case, run_recovery_case, silence_injected_panics, ChaosStats};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: check-chaos [--cases N] [--seconds S] [--seed BASE]");
    std::process::exit(2);
}

fn main() {
    let mut cases = 24u64;
    let mut seconds = 20u64;
    let mut base: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seconds" => {
                seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                base = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    let base = base.unwrap_or(0xC4A05);
    println!("check-chaos: fixed corpus {cases} case(s) from seed {base}, then {seconds}s randomized");
    silence_injected_panics();

    let mut stats = ChaosStats::default();
    let mut ran = 0u64;
    let fail = |seed: u64, err: String| -> ! {
        eprintln!("check-chaos: INVARIANT VIOLATED\n  {err}\n  reproduce: check-chaos --cases 1 --seconds 0 --seed {seed}");
        std::process::exit(1);
    };

    for seed in base..base + cases {
        match run_case(seed) {
            Ok(s) => stats += s,
            Err(e) => fail(seed, e),
        }
        ran += 1;
    }

    // Recovery corpus: the resilience-runtime invariants (transient
    // faults rescued bitwise, permanent faults degrade with breaker
    // accounting, kill/resume digest-equal) over a smaller fixed prefix —
    // each case runs several whole fleets, so a quarter of the sweep
    // corpus keeps the job time comparable.
    let recovery_cases = cases.div_ceil(4).max(1);
    for seed in base..base + recovery_cases {
        match run_recovery_case(seed) {
            Ok(s) => stats += s,
            Err(e) => fail(seed, e),
        }
        ran += 1;
    }

    // Randomized tail: clock-derived seeds, printed on failure.
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED)
        | 1 << 63; // disjoint from the fixed corpus
    while Instant::now() < deadline {
        match run_case(seed) {
            Ok(s) => stats += s,
            Err(e) => fail(seed, e),
        }
        ran += 1;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }

    println!(
        "check-chaos: {ran} case(s), {} point(s) ({} failed, {} degraded — all accounted), \
         {} sim event(s) bounded by watchdog, {}/{} artifact save(s) failed atomically, \
         {} cached sweep(s) bit-transparent ({} cache I/O fault(s) absorbed), \
         {} lane(s) rescued bitwise via {} restart(s) ({} breaker trip(s), \
         {} lane(s) correctly dead); no invariant violated",
        stats.points, stats.failed, stats.degraded, stats.sim_events, stats.save_failures,
        stats.saves, stats.cache_sweeps, stats.cache_io_errors, stats.rescued_lanes,
        stats.lane_restarts, stats.fleet_breaker_trips, stats.dead_lanes,
    );
}
