//! Randomized differential scenarios and their oracle.
//!
//! A [`Scenario`] is one randomly drawn configuration of the paper's
//! model: a set of load families, a utility family, a capacity grid, and
//! an optional fixed admission cap (footnote 9). [`check_scenario`]
//! evaluates every (load, capacity) cell through the workspace's
//! redundant evaluation paths and checks the ladder of cross-path
//! invariants (see [`crate::diff`]):
//!
//! 1. **sanity** — `B(C)` and `R(C)` are finite and inside `[0, 1]`;
//! 2. **engine transparency** — the memoized [`SweepEngine`] reproduces
//!    the serial [`DiscreteModel`] bitwise, and its parallel mode
//!    reproduces its serial mode bitwise;
//! 3. **argmax consistency** — the derived `k_max(C)` is locally optimal:
//!    capping admission at `k_max ± 1` never increases `R(C)`
//!    (a first-principles oracle that catches any off-by-one in the
//!    threshold search), and a fixed override never beats the derived
//!    threshold;
//! 4. **continuum agreement** — where closed forms exist (exponential
//!    loads), quadrature matches them to near machine precision and the
//!    discrete model matches them to the `O(1/k̄)` discretization bound.
//!
//! [`check_scenario_sim`] adds the Monte Carlo rung: a best-effort
//! simulation whose admission-time utility must match the analytic
//! `B(C)` computed from the run's *own* empirical occupancy (PASTA),
//! within a CLT-width tolerance from the run's variance.
//!
//! The [`ScenarioStrategy`] shrinker collapses failing scenarios toward a
//! single load family, a single capacity near 1, the rigid utility, and
//! no admission cap — so a reported counterexample is usually a one-line
//! reproduction.

use crate::diff::Tolerance;
use crate::strategy::{shrink_f64_toward, Strategy};
use bevra_core::continuum::{
    AlgebraicClosed, ContinuumModel, ExponentialRampClosed, ExponentialRigidClosed,
};
use bevra_core::DiscreteModel;
use bevra_engine::{ExecMode, SweepEngine};
use bevra_load::{Algebraic, ExponentialDensity, Geometric, ParetoDensity, Poisson, Tabulated};
use bevra_sim::{Discipline, HoldingDist, MixedPoisson, SimConfig, Simulation};
use bevra_utility::{AdaptiveExp, Ramp, Rigid, Utility};
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::Arc;

/// Tabulation tolerance for scenario load tables.
const TAB_TOL: f64 = 1e-10;
/// Tabulation length cap (heavy algebraic tails get truncated here).
const TAB_CAP: usize = 1 << 13;
/// Mean-load range scenarios draw from.
const MEAN_LO: f64 = 6.0;
const MEAN_HI: f64 = 60.0;
/// Capacity range scenarios draw from.
const CAP_LO: f64 = 1.0;
const CAP_HI: f64 = 250.0;
/// Algebraic tail exponent range (paper uses z ≈ 2.5).
const Z_LO: f64 = 2.3;
const Z_HI: f64 = 4.0;

/// Absolute slack for identities that hold exactly in real arithmetic but
/// are computed as independently rounded table sums.
const SUM_SLACK: f64 = 1e-9;

/// Quadrature tolerance for the continuum rungs. Tighter settings hit
/// `tanh_sinh`'s iteration cap for extreme ramp parameters (small `a`
/// puts a utility knot far into the load tail).
const QUAD_TOL: f64 = 1e-8;

/// A load family with its parameters, as drawn for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadFamily {
    /// Poisson number-of-flows distribution (fixed-rate arrivals).
    Poisson {
        /// Mean offered load `k̄`.
        mean: f64,
    },
    /// Geometric distribution — the discrete analogue of the paper's
    /// exponential load density, so closed forms are available.
    Exponential {
        /// Mean offered load `k̄`.
        mean: f64,
    },
    /// Algebraic (heavy-tailed) distribution with exponent `z`.
    Algebraic {
        /// Tail exponent `z > 2`.
        z: f64,
        /// Mean offered load `k̄`.
        mean: f64,
    },
}

impl LoadFamily {
    /// The family's mean parameter.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LoadFamily::Poisson { mean }
            | LoadFamily::Exponential { mean }
            | LoadFamily::Algebraic { mean, .. } => mean,
        }
    }

    /// Tabulate the family for the discrete model.
    ///
    /// # Errors
    ///
    /// Reports invalid parameter combinations (from
    /// [`Algebraic::from_mean`]) as strings, so scenario checks surface
    /// them as ordinary failures rather than panics.
    pub fn tabulate(&self) -> Result<Tabulated, String> {
        match *self {
            LoadFamily::Poisson { mean } => {
                Ok(Tabulated::from_model(&Poisson::new(mean), TAB_TOL, TAB_CAP))
            }
            LoadFamily::Exponential { mean } => {
                Ok(Tabulated::from_model(&Geometric::from_mean(mean), TAB_TOL, TAB_CAP))
            }
            LoadFamily::Algebraic { z, mean } => {
                let model = Algebraic::from_mean(z, mean)
                    .map_err(|e| format!("Algebraic::from_mean({z}, {mean}): {e:?}"))?;
                Ok(Tabulated::from_model(&model, TAB_TOL, TAB_CAP))
            }
        }
    }
}

/// A utility family with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum UtilityFamily {
    /// Rigid (step) utility with unit bandwidth requirement.
    Rigid,
    /// The paper's adaptive-exponent utility at κ = 0.62086.
    Adaptive,
    /// Ramp utility, linear between `a` and 1.
    Ramp {
        /// Lower ramp threshold `a ∈ (0, 1]`.
        a: f64,
    },
}

impl UtilityFamily {
    /// The family as a shared trait object (for the simulator and for
    /// generic model construction: `Arc<dyn Utility>` itself implements
    /// [`Utility`]).
    #[must_use]
    pub fn as_dyn(&self) -> Arc<dyn Utility> {
        match *self {
            UtilityFamily::Rigid => Arc::new(Rigid::unit()),
            UtilityFamily::Adaptive => Arc::new(AdaptiveExp::paper()),
            UtilityFamily::Ramp { a } => Arc::new(Ramp::new(a)),
        }
    }
}

/// One randomly drawn differential scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Load families to evaluate (each independently).
    pub loads: Vec<LoadFamily>,
    /// Utility family shared by all cells.
    pub utility: UtilityFamily,
    /// Capacity grid.
    pub capacities: Vec<f64>,
    /// Fixed admission cap (footnote 9) overriding the derived
    /// `k_max(C)`; `None` uses the derived threshold.
    pub admission_cap: Option<u64>,
}

/// Strategy generating and shrinking [`Scenario`]s.
#[derive(Debug, Clone)]
pub struct ScenarioStrategy {
    /// Maximum number of load families per scenario.
    pub max_loads: usize,
    /// Maximum number of capacity grid points per scenario.
    pub max_capacities: usize,
}

impl Default for ScenarioStrategy {
    fn default() -> Self {
        Self { max_loads: 3, max_capacities: 3 }
    }
}

impl Strategy for ScenarioStrategy {
    type Value = Scenario;

    fn generate(&self, rng: &mut StdRng) -> Scenario {
        let n_loads = rng.random_range(1..self.max_loads + 1);
        let loads = (0..n_loads)
            .map(|_| {
                let mean = MEAN_LO + (MEAN_HI - MEAN_LO) * rng.random::<f64>();
                match rng.random_range(0..3u32) {
                    0 => LoadFamily::Poisson { mean },
                    1 => LoadFamily::Exponential { mean },
                    _ => {
                        let z = Z_LO + (Z_HI - Z_LO) * rng.random::<f64>();
                        LoadFamily::Algebraic { z, mean }
                    }
                }
            })
            .collect();
        let utility = match rng.random_range(0..3u32) {
            0 => UtilityFamily::Rigid,
            1 => UtilityFamily::Adaptive,
            _ => UtilityFamily::Ramp { a: 0.05 + 0.85 * rng.random::<f64>() },
        };
        let n_caps = rng.random_range(1..self.max_capacities + 1);
        let capacities =
            (0..n_caps).map(|_| CAP_LO + (CAP_HI - CAP_LO) * rng.random::<f64>()).collect();
        let admission_cap =
            if rng.random_range(0..4u32) == 0 { Some(rng.random_range(1..81u64)) } else { None };
        Scenario { loads, utility, capacities, admission_cap }
    }

    fn shrink(&self, sc: &Scenario) -> Vec<Scenario> {
        let mut out = Vec::new();
        let mut push = |s: Scenario| {
            if s != *sc {
                out.push(s);
            }
        };
        // Structural first: fewer load families …
        if sc.loads.len() > 1 {
            push(Scenario { loads: vec![sc.loads[0].clone()], ..sc.clone() });
            push(Scenario { loads: sc.loads[..sc.loads.len() - 1].to_vec(), ..sc.clone() });
            push(Scenario { loads: sc.loads[1..].to_vec(), ..sc.clone() });
        }
        // … and fewer capacity points.
        if sc.capacities.len() > 1 {
            push(Scenario { capacities: vec![sc.capacities[0]], ..sc.clone() });
            push(Scenario {
                capacities: sc.capacities[..sc.capacities.len() - 1].to_vec(),
                ..sc.clone()
            });
            push(Scenario { capacities: sc.capacities[1..].to_vec(), ..sc.clone() });
        }
        // Numeric: bisect capacities toward the smallest interesting value.
        for (i, &c) in sc.capacities.iter().enumerate() {
            for cand in shrink_f64_toward(c, &[CAP_LO]) {
                let mut caps = sc.capacities.clone();
                caps[i] = cand;
                push(Scenario { capacities: caps, ..sc.clone() });
            }
        }
        // Drop the admission-cap override.
        if sc.admission_cap.is_some() {
            push(Scenario { admission_cap: None, ..sc.clone() });
        }
        // Simplify the utility toward rigid.
        match sc.utility {
            UtilityFamily::Rigid => {}
            UtilityFamily::Adaptive | UtilityFamily::Ramp { .. } => {
                push(Scenario { utility: UtilityFamily::Rigid, ..sc.clone() });
            }
        }
        // Simplify load families (heavy-tailed → exponential → Poisson),
        // and bisect means toward the low end.
        for (i, load) in sc.loads.iter().enumerate() {
            let mut replace = |fam: LoadFamily| {
                let mut loads = sc.loads.clone();
                loads[i] = fam;
                push(Scenario { loads, ..sc.clone() });
            };
            match *load {
                LoadFamily::Algebraic { mean, .. } => {
                    replace(LoadFamily::Poisson { mean });
                    replace(LoadFamily::Exponential { mean });
                }
                LoadFamily::Exponential { mean } => replace(LoadFamily::Poisson { mean }),
                LoadFamily::Poisson { .. } => {}
            }
            for cand in shrink_f64_toward(load.mean(), &[MEAN_LO]) {
                let fam = match *load {
                    LoadFamily::Poisson { .. } => LoadFamily::Poisson { mean: cand },
                    LoadFamily::Exponential { .. } => LoadFamily::Exponential { mean: cand },
                    LoadFamily::Algebraic { z, .. } => LoadFamily::Algebraic { z, mean: cand },
                };
                replace(fam);
            }
        }
        out
    }
}

/// Bitwise equality between two path outputs that execute the same scalar
/// code (tolerance rung 1, stricter than [`Tolerance::Ulps`]`(0)`: NaN
/// from the same code path compares equal).
fn bits_eq(what: &str, a: f64, b: f64) -> Result<(), String> {
    if a.to_bits() == b.to_bits() {
        Ok(())
    } else {
        Err(format!("{what}: {a:?} vs {b:?} (bit patterns {:#x} vs {:#x})", a.to_bits(), b.to_bits()))
    }
}

/// Analytic bound for discrete-vs-continuum disagreement at mean load
/// `k̄`: the discretization error of replacing the load integral by a sum
/// is `O(1/k̄)`. The measured envelope over the scenario domain is
/// `0.39/k̄` for `B` and `0.77/k̄` for `R` (the argmax kink makes `R`
/// worse); the constant leaves ~2.5× headroom.
fn discretization_bound(mean: f64) -> f64 {
    2.0 / mean + 1e-3
}

/// Evaluate every (load, capacity) cell of a scenario through the
/// analytic paths and check the tolerance ladder.
///
/// # Errors
///
/// Returns the first violated rung, naming the cell and the quantity.
pub fn check_scenario(sc: &Scenario) -> Result<(), String> {
    if sc.loads.is_empty() || sc.capacities.is_empty() {
        return Err("scenario has no cells".to_string());
    }
    let utility = sc.utility.as_dyn();
    for (li, load) in sc.loads.iter().enumerate() {
        let table = Arc::new(load.tabulate()?);
        check_cells(li, load, &table, &utility, sc)?;
        continuum_rungs(li, load, &table, sc)?;
    }
    Ok(())
}

/// The discrete-path rungs (sanity, engine transparency, argmax
/// consistency) for one load table.
fn check_cells(
    li: usize,
    load: &LoadFamily,
    table: &Arc<Tabulated>,
    utility: &Arc<dyn Utility>,
    sc: &Scenario,
) -> Result<(), String> {
    let mk = || {
        let m = DiscreteModel::new(Arc::clone(table), Arc::clone(utility));
        match sc.admission_cap {
            Some(cap) => m.with_admission_cap(cap),
            None => m,
        }
    };
    let model = mk();
    let eng_serial = SweepEngine::with_mode(mk(), ExecMode::Serial);
    let eng_par = SweepEngine::with_mode(mk(), ExecMode::Parallel { threads: 4 });
    let serial_points = eng_serial.sweep(&sc.capacities);
    let par_points = eng_par.sweep(&sc.capacities);

    for (ci, (&c, (ps, pp))) in
        sc.capacities.iter().zip(serial_points.iter().zip(&par_points)).enumerate()
    {
        let cell = format!("load[{li}]={load:?}, C[{ci}]={c}");
        let b = model.best_effort(c);
        let r = model.reservation(c);

        // Rung: sanity bounds. Utilities are in [0, 1], so normalized
        // per-flow utilities must be too (up to summation slack).
        for (name, v) in [("B", b), ("R", r)] {
            if !v.is_finite() || !(-SUM_SLACK..=1.0 + SUM_SLACK).contains(&v) {
                return Err(format!("{cell}: {name}(C) = {v} outside [0, 1]"));
            }
        }

        // Rung: engine transparency — serial engine vs raw model, and
        // parallel engine vs serial engine, all bitwise.
        bits_eq(&format!("{cell}: engine B vs model B"), ps.best_effort, b)?;
        bits_eq(&format!("{cell}: engine R vs model R"), ps.reservation, r)?;
        bits_eq(&format!("{cell}: parallel vs serial B"), pp.best_effort, ps.best_effort)?;
        bits_eq(&format!("{cell}: parallel vs serial R"), pp.reservation, ps.reservation)?;
        bits_eq(&format!("{cell}: parallel vs serial δ"), pp.performance_gap, ps.performance_gap)?;
        bits_eq(&format!("{cell}: parallel vs serial Δ"), pp.bandwidth_gap, ps.bandwidth_gap)?;

        match sc.admission_cap {
            None => {
                // Rung: reservations dominate best effort when the
                // threshold is the true argmax (termwise in the proof, so
                // only summation slack is allowed).
                if r < b - SUM_SLACK {
                    return Err(format!("{cell}: R(C) = {r} < B(C) = {b}"));
                }
                // Rung: argmax consistency. R as a function of the cap m
                // increases exactly while V(m+1) ≥ V(m), so the derived
                // k_max must beat both neighbors.
                let m = model.k_max(c).ok_or_else(|| {
                    format!("{cell}: k_max(C) = None for an inelastic utility")
                })?;
                if m == 0 {
                    return Err(format!("{cell}: k_max(C) = 0"));
                }
                for neighbor in [m.saturating_sub(1), m + 1] {
                    if neighbor == 0 {
                        continue;
                    }
                    let rn = model.reservation_with_kmax(c, Some(neighbor));
                    if rn > r + SUM_SLACK {
                        return Err(format!(
                            "{cell}: k_max = {m} is not optimal: cap {neighbor} gives \
                             R = {rn} > {r}"
                        ));
                    }
                }
            }
            Some(cap) => {
                // Rung: a fixed override can never beat the derived
                // threshold (that is what "argmax" means).
                let opt = DiscreteModel::new(Arc::clone(table), Arc::clone(utility));
                let r_opt = opt.reservation(c);
                if r > r_opt + SUM_SLACK {
                    return Err(format!(
                        "{cell}: fixed cap {cap} gives R = {r} > derived-k_max R = {r_opt}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The continuum rungs for one load family: quadrature vs closed form
/// (near machine precision) and discrete vs continuum (`O(1/k̄)`).
fn continuum_rungs(
    li: usize,
    load: &LoadFamily,
    table: &Arc<Tabulated>,
    sc: &Scenario,
) -> Result<(), String> {
    // The quadrature runs at 1e-8 (tighter tolerances fail to converge
    // for extreme ramp parameters); the comparison budget sits well above
    // that but far below any discretization or modelling error.
    let quad_tol = Tolerance::AbsRel { abs: 2e-5, rel: 2e-5 };
    let c0 = sc.capacities[0];
    match (load, &sc.utility) {
        // Exponential load: closed forms exist for rigid and ramp, and the
        // geometric table is the matched discretization.
        (LoadFamily::Exponential { mean }, UtilityFamily::Rigid) => {
            let closed = ExponentialRigidClosed::from_mean(*mean);
            let quad = ContinuumModel::new(ExponentialDensity::from_mean(*mean), Rigid::unit())
                .with_tolerance(QUAD_TOL);
            let qb = quad.best_effort(c0).map_err(|e| format!("quad B failed: {e:?}"))?;
            quad_tol.check(&format!("load[{li}] quad vs closed B({c0})"), qb, closed.best_effort(c0))?;
            let qr = quad.reservation(c0).map_err(|e| format!("quad R failed: {e:?}"))?;
            quad_tol.check(&format!("load[{li}] quad vs closed R({c0})"), qr, closed.reservation(c0))?;
            let model = DiscreteModel::new(Arc::clone(table), Rigid::unit());
            let tol = Tolerance::Absolute(discretization_bound(*mean));
            for &c in &sc.capacities {
                tol.check(
                    &format!("load[{li}] discrete vs continuum B({c}), k̄={mean}"),
                    model.best_effort(c),
                    closed.best_effort(c),
                )?;
                tol.check(
                    &format!("load[{li}] discrete vs continuum R({c}), k̄={mean}"),
                    model.reservation(c),
                    closed.reservation(c),
                )?;
            }
        }
        (LoadFamily::Exponential { mean }, UtilityFamily::Ramp { a }) => {
            let closed = ExponentialRampClosed::new(1.0 / mean, *a);
            let quad = ContinuumModel::new(ExponentialDensity::from_mean(*mean), Ramp::new(*a))
                .with_tolerance(QUAD_TOL);
            let qb = quad.best_effort(c0).map_err(|e| format!("quad B failed: {e:?}"))?;
            quad_tol.check(&format!("load[{li}] quad vs closed B({c0})"), qb, closed.best_effort(c0))?;
            let model = DiscreteModel::new(Arc::clone(table), Ramp::new(*a));
            let tol = Tolerance::Absolute(discretization_bound(*mean));
            for &c in &sc.capacities {
                tol.check(
                    &format!("load[{li}] discrete vs continuum B({c}), k̄={mean}"),
                    model.best_effort(c),
                    closed.best_effort(c),
                )?;
            }
        }
        // Algebraic load: the closed forms live on the unit-scale Pareto
        // density, which the discrete table is not calibrated to — check
        // quadrature against the closed form only.
        (LoadFamily::Algebraic { z, .. }, UtilityFamily::Rigid) => {
            let closed = AlgebraicClosed::rigid(*z);
            let quad = ContinuumModel::new(ParetoDensity::new(*z), Rigid::unit()).with_tolerance(QUAD_TOL);
            let c = c0.min(20.0); // Heavy tails make large-C quadrature slow.
            let qb = quad.best_effort(c).map_err(|e| format!("quad B failed: {e:?}"))?;
            quad_tol.check(&format!("load[{li}] quad vs closed B({c})"), qb, closed.best_effort(c))?;
        }
        (LoadFamily::Algebraic { z, .. }, UtilityFamily::Ramp { a }) => {
            let closed = AlgebraicClosed::ramp(*z, *a);
            let quad = ContinuumModel::new(ParetoDensity::new(*z), Ramp::new(*a)).with_tolerance(QUAD_TOL);
            let c = c0.min(20.0);
            let qb = quad.best_effort(c).map_err(|e| format!("quad B failed: {e:?}"))?;
            quad_tol.check(&format!("load[{li}] quad vs closed B({c})"), qb, closed.best_effort(c))?;
        }
        // Poisson loads and the adaptive utility have no closed forms:
        // the discrete rungs above are the oracle there.
        _ => {}
    }
    Ok(())
}

/// The Monte Carlo rung: simulate the scenario's first cell under
/// best-effort sharing and compare the measured admission-time utility
/// against the analytic `B(C)` evaluated on the run's own empirical
/// occupancy (PASTA). The tolerance is a CLT band from the run's Welford
/// variance plus a floor for warmup bias and sample correlation.
///
/// # Errors
///
/// Returns the violated comparison, including both values and the band.
pub fn check_scenario_sim(sc: &Scenario, seed: u64) -> Result<(), String> {
    let load = sc.loads.first().ok_or("scenario has no load families")?;
    let capacity = sc.capacities.first().copied().ok_or("scenario has no capacities")?.max(2.0);
    let table = load.tabulate()?;
    // Cap the offered load so the event count stays bounded; the PASTA
    // identity holds for any offered load.
    let offered = table.mean().min(30.0);
    let utility = sc.utility.as_dyn();
    let cfg = SimConfig {
        capacity,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(offered),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::clone(&utility),
        warmup: 100.0,
        horizon: 3_000.0,
        seed,
        max_events: None,
    };
    let rep = Simulation::new(cfg).run();
    if rep.completed == 0 {
        return Err(format!("simulation completed no flows (C={capacity}, a={offered})"));
    }
    let measured = rep.utility_at_admission.mean();
    let predicted = DiscreteModel::new(rep.occupancy(), utility).best_effort(capacity);
    Tolerance::Clt { std_error: rep.utility_at_admission.std_error(), z: 8.0, floor: 0.015 }
        .check(
            &format!("sim vs analytic B({capacity}) at offered load {offered:.2}"),
            measured,
            predicted,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn strategy_rng() -> StdRng {
        StdRng::seed_from_u64(0xBEE5)
    }

    #[test]
    fn generated_scenarios_are_well_formed() {
        let s = ScenarioStrategy::default();
        let mut rng = strategy_rng();
        for _ in 0..200 {
            let sc = s.generate(&mut rng);
            assert!((1..=s.max_loads).contains(&sc.loads.len()));
            assert!((1..=s.max_capacities).contains(&sc.capacities.len()));
            assert!(sc.capacities.iter().all(|c| (CAP_LO..CAP_HI).contains(c)));
            assert!(sc.loads.iter().all(|l| (MEAN_LO..MEAN_HI).contains(&l.mean())));
            if let Some(cap) = sc.admission_cap {
                assert!((1..=80).contains(&cap));
            }
        }
    }

    #[test]
    fn shrink_moves_toward_the_trivial_scenario() {
        let sc = Scenario {
            loads: vec![
                LoadFamily::Algebraic { z: 2.9, mean: 40.0 },
                LoadFamily::Poisson { mean: 22.0 },
            ],
            utility: UtilityFamily::Adaptive,
            capacities: vec![180.0, 55.0],
            admission_cap: Some(17),
        };
        let cands = ScenarioStrategy::default().shrink(&sc);
        assert!(!cands.is_empty());
        // First candidate: single load family.
        assert_eq!(cands[0].loads.len(), 1);
        // Somewhere in the list: capacity bisected toward 1, the cap
        // dropped, and the utility simplified to rigid.
        assert!(cands.iter().any(|c| c.capacities.iter().any(|&x| x < 100.0)));
        assert!(cands.iter().any(|c| c.admission_cap.is_none()));
        assert!(cands.iter().any(|c| c.utility == UtilityFamily::Rigid));
        // A minimal scenario has nowhere left to go but mean/capacity
        // bisection (strictly smaller values).
        let minimal = Scenario {
            loads: vec![LoadFamily::Poisson { mean: MEAN_LO }],
            utility: UtilityFamily::Rigid,
            capacities: vec![CAP_LO],
            admission_cap: None,
        };
        assert!(ScenarioStrategy::default().shrink(&minimal).is_empty());
    }

    #[test]
    fn fixed_scenarios_pass_the_analytic_ladder() {
        for sc in [
            Scenario {
                loads: vec![LoadFamily::Poisson { mean: 30.0 }],
                utility: UtilityFamily::Adaptive,
                capacities: vec![30.0, 60.0],
                admission_cap: None,
            },
            Scenario {
                loads: vec![LoadFamily::Exponential { mean: 25.0 }],
                utility: UtilityFamily::Rigid,
                capacities: vec![10.0, 100.0],
                admission_cap: None,
            },
            Scenario {
                loads: vec![LoadFamily::Algebraic { z: 2.5, mean: 20.0 }],
                utility: UtilityFamily::Ramp { a: 0.4 },
                capacities: vec![15.0],
                admission_cap: Some(12),
            },
        ] {
            check_scenario(&sc).unwrap_or_else(|e| panic!("{sc:?}: {e}"));
        }
    }
}
