//! Seeded value generation with shrinking.
//!
//! A [`Strategy`] couples a random generator with a *shrinker*: given a
//! failing value, [`Strategy::shrink`] proposes a short list of candidate
//! simplifications, **simplest first**. The runner (see
//! [`crate::runner::Checker`]) greedily accepts the first candidate that
//! still fails the property and repeats, so the reported counterexample is
//! a local minimum of the simplification order rather than whatever the
//! seed happened to produce.
//!
//! Conventions shared by every combinator here:
//!
//! * **numbers** shrink by geometric bisection toward configured *anchor*
//!   values (`0`, `1`, a range endpoint, the paper's κ …) — each accepted
//!   candidate at least halves the remaining distance, so shrinking
//!   terminates;
//! * **collections** shrink structurally first (fewer elements), then
//!   element-wise;
//! * **choices** shrink toward earlier alternatives in declaration order;
//! * **tuples** shrink component-wise, left to right.

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt::Debug;

/// A seeded generator plus shrinker for values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draw one value from the strategy's distribution.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty
    /// vector (the default) means the value is atomic: shrinking stops.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

// ------------------------------------------------------------------- floats

/// Uniform `f64` strategy over `[lo, hi)`; see [`uniform`].
#[derive(Debug, Clone)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
    anchors: Vec<f64>,
}

/// Uniform draw from `[lo, hi)`, shrinking toward `lo` by default.
///
/// # Panics
///
/// Panics unless `lo < hi` and both are finite.
pub fn uniform(lo: f64, hi: f64) -> UniformF64 {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "uniform({lo}, {hi}) is not a range");
    UniformF64 { lo, hi, anchors: vec![lo] }
}

impl UniformF64 {
    /// Replace the shrink anchors: failing values are bisected toward each
    /// anchor in turn (earlier anchors are preferred). Anchors outside
    /// `[lo, hi)` are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no anchor survives the range filter.
    #[must_use]
    pub fn shrink_toward(mut self, anchors: &[f64]) -> Self {
        self.anchors =
            anchors.iter().copied().filter(|a| *a >= self.lo && *a < self.hi).collect();
        assert!(!self.anchors.is_empty(), "no shrink anchor inside [{}, {})", self.lo, self.hi);
        self
    }
}

/// Bisection candidates for a failing float: for each anchor `a`, propose
/// `a` itself, then the midpoint, then a three-quarter step toward `v`.
/// Every candidate strictly reduces `|v − a|`, so greedy acceptance
/// converges.
pub fn shrink_f64_toward(v: f64, anchors: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for &a in anchors {
        if v == a {
            continue;
        }
        out.push(a);
        for frac in [0.5, 0.75] {
            let c = a + (v - a) * frac;
            if c != v && c != a {
                out.push(c);
            }
        }
    }
    out
}

impl Strategy for UniformF64 {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_toward(*value, &self.anchors)
    }
}

// ----------------------------------------------------------------- integers

/// Uniform integer strategy over an inclusive range; see [`int_range`].
#[derive(Debug, Clone)]
pub struct IntRange {
    lo: u64,
    hi: u64,
}

/// Uniform draw from `lo..=hi`, shrinking toward `lo`.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi == u64::MAX` (the sampler needs `hi + 1`).
pub fn int_range(lo: u64, hi: u64) -> IntRange {
    assert!(lo <= hi && hi < u64::MAX, "int_range({lo}, {hi}) is not a sampleable range");
    IntRange { lo, hi }
}

impl Strategy for IntRange {
    type Value = u64;

    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.random_range(self.lo..self.hi + 1)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            if v - 1 != self.lo && v - 1 != mid {
                out.push(v - 1);
            }
        }
        out
    }
}

// ------------------------------------------------------------------ choices

/// Pick uniformly from a fixed list; see [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T> {
    items: Vec<T>,
}

/// Uniform pick from `items`; failing picks shrink toward *earlier* items,
/// so list alternatives simplest-first.
///
/// # Panics
///
/// Panics on an empty list.
pub fn choice<T: Clone + Debug + PartialEq>(items: Vec<T>) -> Choice<T> {
    assert!(!items.is_empty(), "choice over an empty list");
    Choice { items }
}

impl<T: Clone + Debug + PartialEq> Strategy for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.items[rng.random_range(0..self.items.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let pos = self.items.iter().position(|x| x == value).unwrap_or(0);
        self.items[..pos].to_vec()
    }
}

// -------------------------------------------------------------- collections

/// Variable-length vector of an element strategy; see [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// A vector of `min_len..=max_len` elements drawn from `elem`.
///
/// Shrinking is structural first — keep a prefix of minimum length, keep
/// the first half, drop one element from either end — and element-wise
/// second, so counterexamples collapse to few, simple elements.
///
/// # Panics
///
/// Panics if `min_len > max_len`.
pub fn vec_of<S: Strategy>(elem: S, min_len: usize, max_len: usize) -> VecOf<S> {
    assert!(min_len <= max_len, "vec_of range {min_len}..={max_len} is empty");
    VecOf { elem, min_len, max_len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.random_range(self.min_len..self.max_len + 1);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let n = value.len();
        let mut out = Vec::new();
        if n > self.min_len {
            let head = self.min_len.max(1);
            if head < n {
                out.push(value[..head].to_vec());
            }
            let half = self.min_len.max(n / 2);
            if half < n && half != head {
                out.push(value[..half].to_vec());
            }
            out.push(value[..n - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        // Element-wise, with bounded fan-out: long vectors have usually
        // been structurally shrunk already by the time this matters.
        for i in 0..n.min(8) {
            for c in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut w = value.clone();
                w[i] = c;
                out.push(w);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- constants

/// Always produce the same value; see [`just`].
#[derive(Debug, Clone)]
pub struct Just<T>(T);

/// The constant strategy: every case sees `value`, nothing shrinks.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------------- tuples

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for c in self.0.shrink(&value.0) {
            out.push((c, value.1.clone()));
        }
        for c in self.1.shrink(&value.1) {
            out.push((value.0.clone(), c));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for c in self.0.shrink(&value.0) {
            out.push((c, value.1.clone(), value.2.clone()));
        }
        for c in self.1.shrink(&value.1) {
            out.push((value.0.clone(), c, value.2.clone()));
        }
        for c in self.2.shrink(&value.2) {
            out.push((value.0.clone(), value.1.clone(), c));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for c in self.0.shrink(&value.0) {
            out.push((c, value.1.clone(), value.2.clone(), value.3.clone()));
        }
        for c in self.1.shrink(&value.1) {
            out.push((value.0.clone(), c, value.2.clone(), value.3.clone()));
        }
        for c in self.2.shrink(&value.2) {
            out.push((value.0.clone(), value.1.clone(), c, value.3.clone()));
        }
        for c in self.3.shrink(&value.3) {
            out.push((value.0.clone(), value.1.clone(), value.2.clone(), c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn uniform_stays_in_range_and_shrinks_toward_anchor() {
        let s = uniform(2.0, 5.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = s.generate(&mut r);
            assert!((2.0..5.0).contains(&v));
        }
        let cands = s.shrink(&4.0);
        assert_eq!(cands[0], 2.0, "anchor first");
        assert!(cands.iter().all(|c| (2.0..=4.0).contains(c)));
        // Anchored at κ: candidates close in on κ from the failing side.
        let s = uniform(0.0, 1.0).shrink_toward(&[0.620_86]);
        for c in s.shrink(&0.9) {
            assert!((0.620_86..=0.9).contains(&c), "candidate {c}");
        }
        assert!(s.shrink(&0.620_86).is_empty(), "anchor itself is minimal");
    }

    #[test]
    fn int_range_shrink_candidates_decrease() {
        let s = int_range(1, 100);
        for c in s.shrink(&64) {
            assert!((1..64).contains(&c));
        }
        assert!(s.shrink(&1).is_empty());
    }

    #[test]
    fn choice_shrinks_toward_earlier_items() {
        let s = choice(vec!["a", "b", "c"]);
        assert_eq!(s.shrink(&"c"), vec!["a", "b"]);
        assert!(s.shrink(&"a").is_empty());
    }

    #[test]
    fn vec_of_structural_shrinks_come_first() {
        let s = vec_of(int_range(0, 9), 1, 8);
        let v = vec![5u64, 6, 7, 8];
        let cands = s.shrink(&v);
        assert_eq!(cands[0], vec![5], "single-element prefix first");
        assert!(cands.iter().all(|c| !c.is_empty()), "respects min_len");
        assert!(s.generate(&mut rng()).len() <= 8);
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let s = (int_range(0, 9), uniform(0.0, 1.0));
        let cands = s.shrink(&(4u64, 0.5));
        assert!(cands.iter().any(|&(k, x)| k < 4 && x == 0.5));
        assert!(cands.iter().any(|&(k, x)| k == 4 && x < 0.5));
    }

    #[test]
    fn just_never_shrinks() {
        let s = just(42u64);
        assert_eq!(s.generate(&mut rng()), 42);
        assert!(s.shrink(&42).is_empty());
    }
}
