//! The tolerance ladder for differential comparisons.
//!
//! Different pairs of evaluation paths agree to very different degrees,
//! and a single fuzzy epsilon would either mask real regressions or drown
//! in false alarms. The ladder makes each comparison's contract explicit:
//!
//! | rung | pair | tolerance |
//! |---|---|---|
//! | 1 | memoized engine vs serial model | **exact ULPs** (same scalar code) |
//! | 2 | closed forms vs quadrature | small absolute/relative bound |
//! | 3 | continuum vs discrete | analytic `O(1/k̄)` discretization bound |
//! | 4 | simulation vs analytics | CLT width from the run's own variance |
//!
//! [`ulp_distance`] is the metric for rung 1: the number of representable
//! `f64` values strictly between two floats, computed through the usual
//! monotone reinterpretation of the IEEE-754 bit pattern.

/// Number of representable `f64` values between `a` and `b` (0 when
/// bitwise equal or both zero; `u64::MAX` when either is NaN).
///
/// Uses the standard order-preserving map from IEEE-754 bits to integers,
/// so the distance is well defined across the zero crossing and at
/// infinities.
#[must_use]
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0; // Also merges +0.0 / −0.0.
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    let d = i128::from(ordered(a)) - i128::from(ordered(b));
    u64::try_from(d.unsigned_abs()).unwrap_or(u64::MAX)
}

/// One rung of the tolerance ladder: how closely two paths must agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// At most this many ULPs apart (0 = bitwise identical up to signed
    /// zero). For pairs that execute the same scalar code, e.g. the
    /// memoized engine versus the serial model.
    Ulps(u64),
    /// Absolute difference bound: closed forms versus quadrature, or an
    /// analytic discretization bound for continuum versus discrete.
    Absolute(f64),
    /// Relative difference bound, measured against the larger magnitude.
    Relative(f64),
    /// `abs + rel·max(|got|, |want|)` — the usual mixed bound.
    AbsRel {
        /// Absolute floor of the bound.
        abs: f64,
        /// Relative component of the bound.
        rel: f64,
    },
    /// A confidence-interval bound for Monte Carlo estimates:
    /// `z·std_error + floor`, where `std_error` comes from the run's own
    /// Welford accumulator and `floor` absorbs bias the CLT width cannot
    /// see (finite warmup, correlated samples).
    Clt {
        /// Standard error of the Monte Carlo estimate.
        std_error: f64,
        /// Width multiplier (e.g. 6 for a generous six-sigma band).
        z: f64,
        /// Additive floor for non-CLT error sources.
        floor: f64,
    },
}

impl Tolerance {
    /// The numeric bound this tolerance allows for the pair `(got, want)`
    /// (for [`Tolerance::Ulps`] the bound is in ULPs, not magnitude).
    #[must_use]
    pub fn bound(&self, got: f64, want: f64) -> f64 {
        match *self {
            Tolerance::Ulps(n) => n as f64,
            Tolerance::Absolute(abs) => abs,
            Tolerance::Relative(rel) => rel * got.abs().max(want.abs()),
            Tolerance::AbsRel { abs, rel } => abs + rel * got.abs().max(want.abs()),
            Tolerance::Clt { std_error, z, floor } => z * std_error + floor,
        }
    }

    /// Check `got` against `want`, describing the violated rung on
    /// failure. Non-finite values fail every rung (a NaN must never
    /// launder through a tolerance).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming `what`, both values, the
    /// observed discrepancy, and the allowed bound.
    pub fn check(&self, what: &str, got: f64, want: f64) -> Result<(), String> {
        if !got.is_finite() || !want.is_finite() {
            return Err(format!("{what}: non-finite comparison: got {got}, want {want}"));
        }
        match *self {
            Tolerance::Ulps(max_ulps) => {
                let d = ulp_distance(got, want);
                if d <= max_ulps {
                    Ok(())
                } else {
                    Err(format!(
                        "{what}: {got:?} vs {want:?} differ by {d} ULPs (allowed {max_ulps})"
                    ))
                }
            }
            _ => {
                let diff = (got - want).abs();
                let bound = self.bound(got, want);
                if diff <= bound {
                    Ok(())
                } else {
                    Err(format!(
                        "{what}: {got:?} vs {want:?} differ by {diff:.3e} (allowed {bound:.3e}, {self:?})"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 7)), 7);
        // Symmetric, and well defined across zero.
        assert_eq!(ulp_distance(-f64::MIN_POSITIVE, f64::MIN_POSITIVE), ulp_distance(f64::MIN_POSITIVE, -f64::MIN_POSITIVE));
        assert!(ulp_distance(-1.0, 1.0) > 1 << 60);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn ulps_rung_accepts_within_budget() {
        let b = f64::from_bits(1.5f64.to_bits() + 2);
        assert!(Tolerance::Ulps(2).check("x", 1.5, b).is_ok());
        assert!(Tolerance::Ulps(1).check("x", 1.5, b).is_err());
        assert!(Tolerance::Ulps(0).check("x", 0.25, 0.25).is_ok());
    }

    #[test]
    fn magnitude_rungs() {
        assert!(Tolerance::Absolute(1e-3).check("x", 1.0, 1.0005).is_ok());
        assert!(Tolerance::Absolute(1e-4).check("x", 1.0, 1.0005).is_err());
        assert!(Tolerance::Relative(1e-3).check("x", 1000.0, 1000.5).is_ok());
        assert!(Tolerance::AbsRel { abs: 1e-9, rel: 1e-3 }.check("x", 0.0, 1e-10).is_ok());
        let clt = Tolerance::Clt { std_error: 0.01, z: 3.0, floor: 0.005 };
        assert!(clt.check("x", 0.50, 0.53).is_ok());
        assert!(clt.check("x", 0.50, 0.54).is_err());
    }

    #[test]
    fn nan_and_infinity_always_fail() {
        for t in [Tolerance::Ulps(u64::MAX - 1), Tolerance::Absolute(f64::MAX)] {
            assert!(t.check("x", f64::NAN, 1.0).is_err());
            assert!(t.check("x", 1.0, f64::INFINITY).is_err());
        }
    }

    #[test]
    fn failure_messages_name_the_quantity() {
        let err = Tolerance::Absolute(0.0).check("B(C)", 1.0, 2.0).unwrap_err();
        assert!(err.contains("B(C)"), "{err}");
        assert!(err.contains("allowed"), "{err}");
    }
}
