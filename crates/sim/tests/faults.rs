//! Injected-fault tests for the simulator watchdog.
//!
//! Every test installs a `bevra_faults` plan; the install guard
//! serializes them so the process-global injection state never bleeds
//! between tests. Keep plan-free tests out of this binary.

use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
use bevra_sim::{Discipline, HoldingDist, MixedPoisson, SimConfig, SimError, Simulation};
use bevra_utility::AdaptiveExp;
use std::sync::Arc;

fn cfg() -> SimConfig {
    SimConfig {
        capacity: 30.0,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(15.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 20.0,
        horizon: 1_000.0,
        seed: 7,
        max_events: None,
    }
}

/// An injected `sim/budget` override trips the watchdog on a config that
/// asks for no budget at all, and the partial report is usable.
#[test]
fn injected_budget_override_truncates_run() {
    let plan = FaultPlan::seeded(5)
        .rule(FaultRule::always(FaultKind::Budget, "sim/budget").with_n(3_000));
    let _guard = install(plan);
    let err = Simulation::new(cfg()).run_checked().expect_err("override must fire");
    let SimError::BudgetExhausted { events, partial } = err else {
        panic!("expected BudgetExhausted, got {err}");
    };
    assert_eq!(events, 3_000);
    assert!(partial.completed > 0, "partial report carries real statistics");
    assert!(partial.occupancy().mean() > 0.0, "census flushed at the cut-off");
}

/// The injected override takes precedence over a larger configured budget,
/// and the truncation is deterministic: same plan seed, same digest.
#[test]
fn injected_budget_wins_over_config_and_is_deterministic() {
    let plan = FaultPlan::seeded(5)
        .rule(FaultRule::always(FaultKind::Budget, "sim/budget").with_n(3_000));
    let _guard = install(plan);
    let mut c = cfg();
    c.max_events = Some(100_000);
    let first = Simulation::new(c.clone()).run();
    let second = Simulation::new(c).run();
    assert_eq!(first.digest(), second.digest());
    // 3000 events of M/M/∞ at 15 erlangs cover ~100 of the 1000
    // simulated time units — the truncation visibly bit: far fewer
    // completions than the ~15k an unbounded run would produce.
    assert!(first.completed < 3_000);
}

/// Dropping the install guard restores unbounded runs. The reference run
/// installs an *empty* plan — injection active but ruleless — both to
/// hold the serialization lock against sibling tests and to check that an
/// active plan with no `sim/budget` rule leaves the watchdog dormant.
#[test]
fn budget_injection_scopes_to_the_guard() {
    let truncated = {
        let plan = FaultPlan::seeded(5)
            .rule(FaultRule::always(FaultKind::Budget, "sim/budget").with_n(200));
        let _guard = install(plan);
        Simulation::new(cfg()).run()
    };
    let _guard = install(FaultPlan::seeded(5));
    let full = Simulation::new(cfg()).run();
    assert!(full.completed > truncated.completed, "full run drains the whole horizon");
    assert!(Simulation::new(cfg()).run_checked().is_ok());
}
