//! The event loop: wiring arrivals, holding times, the link discipline, and
//! measurement into one deterministic simulation.
//!
//! # Architecture (post million-flow refactor)
//!
//! The loop is generic over its pending-event set ([`EventQueue`]) and
//! keeps flow state in struct-of-arrays form ([`FlowTable`]) with the
//! per-admission `max_pop` scan replaced by a monotone suffix-max stack
//! ([`PeakTracker`]) — see `crates/sim/src/flows.rs` for the equivalence
//! argument. Two queue implementations are selectable at run time via
//! [`QueueKind`] / `BEVRA_SIM_QUEUE`: the hierarchical timer wheel
//! (default, amortized O(1) per event) and the original binary heap.
//! Both produce **bitwise-identical** [`SimReport::digest`]s — the
//! differential suite (`tests/timer_wheel.rs`, `tests/sim_scale.rs`)
//! pins that, along with digest parity against the frozen pre-refactor
//! loop preserved in [`crate::legacy`].

use crate::arrivals::MixedPoisson;
use crate::census::Census;
use crate::events::{Entry, EventKind};
use crate::flows::{FlowTable, PeakTracker};
use crate::holding::HoldingDist;
use crate::link::Discipline;
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::stats::Welford;
use crate::wheel::{TimerWheelQueue, DEFAULT_GRANULARITY, WHEEL_GRANULARITY_ENV};
use bevra_load::Tabulated;
use bevra_obs::{enabled, metrics, ObsLevel};
use bevra_resilience::Deadline;
use bevra_utility::Utility;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Environment variable selecting the pending-event set implementation:
/// `wheel` (default) or `heap`. Purely an execution knob — both values
/// produce bitwise-identical reports.
pub const QUEUE_ENV: &str = "BEVRA_SIM_QUEUE";

/// Which [`EventQueue`] implementation the run uses. The choice never
/// affects results (the determinism suite asserts digest equality), only
/// speed: the wheel is amortized O(1) per event, the heap O(log n).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timer wheel ([`TimerWheelQueue`]) — the default.
    Wheel,
    /// Binary heap ([`BinaryHeapQueue`]) — the original implementation,
    /// kept selectable for ablations and differential tests.
    Heap,
}

impl QueueKind {
    /// Resolve from `BEVRA_SIM_QUEUE` (`heap` selects the heap; anything
    /// else, including unset, selects the wheel).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(QUEUE_ENV) {
            Ok(v) if v.trim().eq_ignore_ascii_case("heap") => Self::Heap,
            _ => Self::Wheel,
        }
    }
}

/// Metric handles for one run, resolved once up front so the event loop
/// itself never touches the registry: with `BEVRA_OBS=off` (the default)
/// no handles are even created and the loop performs zero observability
/// work; at `summary`+ each event costs a few relaxed atomic ops.
///
/// Recording is observation only — it never touches the RNG or any
/// simulated quantity, so instrumented runs stay bit-identical.
struct SimObs {
    arrivals: Arc<metrics::Counter>,
    departures: Arc<metrics::Counter>,
    retries: Arc<metrics::Counter>,
    switches: Arc<metrics::Counter>,
    admitted: Arc<metrics::Counter>,
    blocked: Arc<metrics::Counter>,
    /// Population `n` seen by the event loop at each event — the
    /// "event-loop occupancy" histogram (log₂-bucketed, p50/p90/p99).
    occupancy: Arc<metrics::Histogram>,
}

impl SimObs {
    fn new() -> Self {
        Self {
            arrivals: metrics::counter("sim/events/arrival"),
            departures: metrics::counter("sim/events/departure"),
            retries: metrics::counter("sim/events/retry"),
            switches: metrics::counter("sim/events/modulation_switch"),
            admitted: metrics::counter("sim/admission/admitted"),
            blocked: metrics::counter("sim/admission/blocked"),
            occupancy: metrics::histogram("sim/occupancy"),
        }
    }
}

/// Complete configuration of one simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// Link capacity `C`.
    pub capacity: f64,
    /// Best-effort or reservation (+ optional retries).
    pub discipline: Discipline,
    /// Arrival process.
    pub arrivals: MixedPoisson,
    /// Holding-time distribution.
    pub holding: HoldingDist,
    /// Application utility `π`.
    pub utility: Arc<dyn Utility>,
    /// Warm-up time excluded from all statistics.
    pub warmup: f64,
    /// Measured horizon after warm-up.
    pub horizon: f64,
    /// RNG seed — equal seeds give bit-identical runs.
    pub seed: u64,
    /// Watchdog budget: maximum events the loop may process before
    /// [`Simulation::run_checked`] stops with
    /// [`SimError::BudgetExhausted`]. `None` (the default everywhere in
    /// this repo) means unbounded; a `budget:sim/budget@n=<N>` fault rule
    /// overrides whatever is configured.
    pub max_events: Option<u64>,
}

/// Probe bandwidths folded into the utility fingerprint of
/// [`SimConfig::fingerprint`]: two utilities agreeing in name and on all
/// probes to the bit are treated as identical (the same convention as the
/// engine's persistent-cache key).
const UTILITY_PROBES: [f64; 16] = [
    0.0, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 13.0, 144.0,
];

impl SimConfig {
    /// Content hash of everything that determines this run's results:
    /// capacity, discipline (including any retry policy), arrival process
    /// configuration, holding distribution, utility fingerprint (name,
    /// probed values, knots), warm-up, horizon, seed, and event budget.
    ///
    /// Two configs with equal fingerprints produce bitwise-identical
    /// reports (queue kind and shard/thread counts never enter — they are
    /// execution knobs). The fleet checkpoint keys its entries on this.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use crate::stats::{fnv_fold, fnv_fold_bytes};
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv_fold_bytes(&mut h, b"bevra-sim v1");
        fnv_fold(&mut h, self.capacity.to_bits());
        let fold_retry = |h: &mut u64, retry: &Option<crate::link::RetryPolicy>| match retry {
            None => fnv_fold(h, 0),
            Some(rp) => {
                fnv_fold(h, 1);
                fnv_fold(h, u64::from(rp.max_retries));
                fnv_fold(h, rp.backoff_mean.to_bits());
                fnv_fold(h, rp.penalty.to_bits());
            }
        };
        match &self.discipline {
            Discipline::BestEffort => fnv_fold(&mut h, 0),
            Discipline::Reservation { k_max, retry } => {
                fnv_fold(&mut h, 1);
                fnv_fold(&mut h, *k_max);
                fold_retry(&mut h, retry);
            }
            Discipline::MeasurementBased { target_share, ewma_weight, retry } => {
                fnv_fold(&mut h, 2);
                fnv_fold(&mut h, target_share.to_bits());
                fnv_fold(&mut h, ewma_weight.to_bits());
                fold_retry(&mut h, retry);
            }
        }
        self.arrivals.digest_into(&mut h);
        match self.holding {
            HoldingDist::Exponential { mean } => {
                fnv_fold(&mut h, 0);
                fnv_fold(&mut h, mean.to_bits());
            }
            HoldingDist::Pareto { mean, z } => {
                fnv_fold(&mut h, 1);
                fnv_fold(&mut h, mean.to_bits());
                fnv_fold(&mut h, z.to_bits());
            }
            HoldingDist::Deterministic { mean } => {
                fnv_fold(&mut h, 2);
                fnv_fold(&mut h, mean.to_bits());
            }
        }
        fnv_fold_bytes(&mut h, self.utility.name().as_bytes());
        for &b in &UTILITY_PROBES {
            fnv_fold(&mut h, self.utility.value(b).to_bits());
        }
        for k in self.utility.knots() {
            fnv_fold(&mut h, k.to_bits());
        }
        fnv_fold(&mut h, self.warmup.to_bits());
        fnv_fold(&mut h, self.horizon.to_bits());
        fnv_fold(&mut h, self.seed);
        match self.max_events {
            None => fnv_fold(&mut h, 0),
            Some(n) => {
                fnv_fold(&mut h, 1);
                fnv_fold(&mut h, n);
            }
        }
        h
    }
}

/// How often (in events) the event loop polls its cooperative deadline.
/// Coarse enough that the disarmed hot path pays one branch per event,
/// fine enough that an expired deadline stops a run within microseconds.
pub const DEADLINE_CHECK_EVENTS: u64 = 4096;

/// Why a checked run stopped early.
#[derive(Debug)]
pub enum SimError {
    /// The event loop hit its watchdog budget ([`SimConfig::max_events`]
    /// or an injected `sim/budget` override) before draining the horizon.
    BudgetExhausted {
        /// Events processed before the watchdog fired.
        events: u64,
        /// Statistics accumulated up to the cut-off. Internally
        /// consistent (census totals match the truncated window, digest
        /// is deterministic) but covers less simulated time than asked.
        partial: Box<SimReport>,
    },
    /// The cooperative deadline (`BEVRA_DEADLINE_MS`, or one passed to
    /// [`Simulation::run_checked_deadline_on`]) expired. Checked every
    /// [`DEADLINE_CHECK_EVENTS`] events, so the partial report is a
    /// self-consistent prefix — but *where* it is cut depends on wall
    /// clock, so deadline-truncated digests are not replay-stable.
    DeadlineExpired {
        /// Events processed before the deadline check fired.
        events: u64,
        /// Statistics accumulated up to the cut-off.
        partial: Box<SimReport>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BudgetExhausted { events, .. } => {
                write!(f, "event budget exhausted after {events} event(s)")
            }
            Self::DeadlineExpired { events, .. } => {
                write!(f, "cooperative deadline expired after {events} event(s)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregated results of a run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Flows that completed service within the measured window.
    pub completed: u64,
    /// Original flows permanently lost (blocked and out of retries).
    pub lost: u64,
    /// Total blocked admission attempts (including retried ones).
    pub blocked_attempts: u64,
    /// Total admission attempts.
    pub attempts: u64,
    /// Total retry events.
    pub retries: u64,
    /// Events the loop processed — the throughput denominator for
    /// events/s figures. **Excluded from [`SimReport::digest`]**: it is
    /// an execution statistic, not a simulated quantity, and the digest's
    /// contract (and its committed golden pins) predate the field.
    pub events: u64,
    /// Utility evaluated at the admission instant (`π(C/k)` with `k` the
    /// population including the new flow — the basic model's view via
    /// PASTA); blocked flows count 0, retry penalties subtracted.
    pub utility_at_admission: Welford,
    /// Utility time-averaged over each flow's lifetime.
    pub utility_time_avg: Welford,
    /// Utility at the worst (largest) population each flow experienced —
    /// the mechanistic analogue of the §5.1 sampling extension's max-of-`S`.
    pub utility_worst: Welford,
    /// Time-weighted occupancy census over the measured window.
    pub census: Census,
}

impl SimReport {
    /// All-zero report, ready to accumulate into.
    pub(crate) fn empty() -> Self {
        Self {
            completed: 0,
            lost: 0,
            blocked_attempts: 0,
            attempts: 0,
            retries: 0,
            events: 0,
            utility_at_admission: Welford::new(),
            utility_time_avg: Welford::new(),
            utility_worst: Welford::new(),
            census: Census::new(),
        }
    }

    /// Per-attempt blocking probability.
    #[must_use]
    pub fn blocking_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.blocked_attempts as f64 / self.attempts as f64
        }
    }

    /// Empirical occupancy distribution.
    ///
    /// # Panics
    ///
    /// Panics if the run observed no time (zero horizon).
    #[must_use]
    pub fn occupancy(&self) -> Tabulated {
        self.census.occupancy()
    }

    /// FNV-1a digest of the report's *exact* state: every counter and the
    /// bit patterns of every accumulated float, census included. (The
    /// [`events`](SimReport::events) execution statistic is deliberately
    /// left out — see its field docs.)
    ///
    /// Two runs of the same configuration and seed must produce equal
    /// digests — regardless of `BEVRA_THREADS`, `BEVRA_SIM_QUEUE`, or
    /// (for fleets) `BEVRA_SIM_SHARDS`. The determinism tests assert
    /// exactly that.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in [self.completed, self.lost, self.blocked_attempts, self.attempts, self.retries]
        {
            crate::stats::fnv_fold(&mut hash, word);
        }
        self.utility_at_admission.digest_into(&mut hash);
        self.utility_time_avg.digest_into(&mut hash);
        self.utility_worst.digest_into(&mut hash);
        self.census.digest_into(&mut hash);
        hash
    }
}

/// One simulation instance. Create with [`Simulation::new`], run with
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
}

impl Simulation {
    /// New simulation from a config.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive capacity or horizon.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.capacity > 0.0, "capacity must be positive");
        assert!(cfg.horizon > 0.0, "horizon must be positive");
        assert!(cfg.warmup >= 0.0, "warmup must be nonnegative");
        Self { cfg }
    }

    /// Run a batch of configurations, fanned out over the sweep engine's
    /// worker pool (`BEVRA_THREADS` or all cores).
    ///
    /// Each run is seeded and self-contained, so the reports are
    /// bit-identical to running the configs one at a time, in input order.
    ///
    /// # Panics
    ///
    /// Panics if any config is invalid (see [`Simulation::new`]).
    #[must_use]
    pub fn run_batch(configs: &[SimConfig]) -> Vec<SimReport> {
        let mut sp = bevra_obs::span("sim/run_batch");
        sp.add_points(configs.len() as u64);
        bevra_engine::parallel_map(configs, |cfg| Simulation::new(cfg.clone()).run())
    }

    /// Execute the run and aggregate the report, degrading gracefully on
    /// budget exhaustion: if the watchdog fires (see
    /// [`Simulation::run_checked`]), the partial report is returned as-is
    /// rather than panicking — callers that must distinguish a truncated
    /// run use `run_checked`.
    #[must_use]
    pub fn run(&self) -> SimReport {
        match self.run_checked() {
            Ok(report) => report,
            Err(
                SimError::BudgetExhausted { partial, .. }
                | SimError::DeadlineExpired { partial, .. },
            ) => *partial,
        }
    }

    /// Execute the run to completion and aggregate the report, stopping
    /// with [`SimError::BudgetExhausted`] — carrying the partial report —
    /// if the event loop processes more than [`SimConfig::max_events`]
    /// events (or an injected `sim/budget` override) before reaching the
    /// horizon.
    ///
    /// The pending-event set is chosen by `BEVRA_SIM_QUEUE` (wheel by
    /// default); use [`Simulation::run_checked_on`] to pin it.
    ///
    /// # Errors
    ///
    /// [`SimError::BudgetExhausted`] when the watchdog fires.
    pub fn run_checked(&self) -> Result<SimReport, SimError> {
        self.run_checked_on(QueueKind::from_env())
    }

    /// [`Simulation::run`] on an explicitly chosen queue implementation.
    #[must_use]
    pub fn run_on(&self, kind: QueueKind) -> SimReport {
        match self.run_checked_on(kind) {
            Ok(report) => report,
            Err(
                SimError::BudgetExhausted { partial, .. }
                | SimError::DeadlineExpired { partial, .. },
            ) => *partial,
        }
    }

    /// [`Simulation::run_checked`] on an explicitly chosen queue
    /// implementation — the differential suite runs both kinds and
    /// asserts digest equality. The ambient `BEVRA_DEADLINE_MS` deadline
    /// (if any) is armed fresh for this run.
    ///
    /// # Errors
    ///
    /// [`SimError::BudgetExhausted`] when the watchdog fires;
    /// [`SimError::DeadlineExpired`] when the ambient deadline passes.
    pub fn run_checked_on(&self, kind: QueueKind) -> Result<SimReport, SimError> {
        self.run_checked_deadline_on(kind, Deadline::from_env("bevra-sim"))
    }

    /// [`Simulation::run_checked_on`] under an explicit, possibly shared,
    /// cooperative [`Deadline`] — the fleet arms one deadline and passes
    /// it to every lane so the whole fleet shares a single time budget.
    ///
    /// # Errors
    ///
    /// [`SimError::BudgetExhausted`] when the watchdog fires;
    /// [`SimError::DeadlineExpired`] when `deadline` passes.
    pub fn run_checked_deadline_on(
        &self,
        kind: QueueKind,
        deadline: Deadline,
    ) -> Result<SimReport, SimError> {
        match kind {
            QueueKind::Heap => EventLoop::new(&self.cfg, BinaryHeapQueue::new()).run(deadline),
            QueueKind::Wheel => {
                // ~1 pending event per level-0 bucket is the calendar-queue
                // sweet spot; total event rate is ≈ 2·λ (each flow arrives
                // and departs). Only a performance knob — any granularity
                // gives the identical dequeue order.
                let auto = (0.5 / self.cfg.arrivals.mean_rate()).clamp(1e-9, DEFAULT_GRANULARITY);
                let g = bevra_num::env::env_positive_f64(WHEEL_GRANULARITY_ENV, 1e12, auto);
                EventLoop::new(&self.cfg, TimerWheelQueue::with_granularity(g)).run(deadline)
            }
        }
    }
}

/// All mutable state of one run, generic over the pending-event set.
struct EventLoop<'a, Q: EventQueue> {
    cfg: &'a SimConfig,
    queue: Q,
    rng: StdRng,
    seq: u64,
    end: f64,
    flows: FlowTable,
    peaks: PeakTracker,
    /// Simulation clock.
    t: f64,
    /// Current population.
    n: u64,
    /// ∫ π(C/n(s)) ds (0 when n = 0).
    integral: f64,
    census: Census,
    /// Load estimate for measurement-based admission (EWMA over the
    /// population seen at arrival instants).
    load_estimate: f64,
    report: SimReport,
    obs: Option<SimObs>,
}

impl<'a, Q: EventQueue> EventLoop<'a, Q> {
    fn new(cfg: &'a SimConfig, queue: Q) -> Self {
        Self {
            cfg,
            queue,
            rng: StdRng::seed_from_u64(cfg.seed),
            seq: 0,
            end: cfg.warmup + cfg.horizon,
            flows: FlowTable::new(),
            peaks: PeakTracker::new(),
            t: 0.0,
            n: 0,
            integral: 0.0,
            census: Census::new(),
            load_estimate: 0.0,
            report: SimReport::empty(),
            obs: None,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.queue.push(Entry { time, seq: self.seq, kind });
        self.seq += 1;
    }

    fn pi(&self, pop: u64) -> f64 {
        if pop == 0 {
            0.0
        } else {
            self.cfg.utility.value(self.cfg.capacity / pop as f64)
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run(mut self, deadline: Deadline) -> Result<SimReport, SimError> {
        // Event-loop observability: a span per run (nests under
        // `sim/run_batch` when batched on the same thread) plus, at
        // `BEVRA_OBS=summary` and above, per-event counters and the
        // occupancy histogram.
        let mut run_span = bevra_obs::span("sim/run");
        self.obs = enabled(ObsLevel::Summary).then(SimObs::new);
        let mut arrivals = self.cfg.arrivals.clone();
        let warmup = self.cfg.warmup;

        // Sequence number of the one live pending Arrival event: a
        // modulation switch replaces it, and the superseded event (still in
        // the queue) is discarded when popped.
        let mut live_arrival_seq: u64;

        // Seed the initial arrival and (if modulated) the first switch.
        arrivals.switch(&mut self.rng);
        live_arrival_seq = self.seq;
        let first_arrival = arrivals.next_interarrival(&mut self.rng);
        self.push(first_arrival, EventKind::Arrival);
        let first_sojourn = arrivals.next_sojourn(&mut self.rng);
        if first_sojourn.is_finite() {
            self.push(first_sojourn, EventKind::ModulationSwitch);
        }

        // Watchdog: the injected override (chaos runs) takes precedence
        // over the configured ceiling. Checked before each event so a
        // budget of N processes exactly N events.
        let budget = bevra_faults::budget_override("sim/budget").or(self.cfg.max_events);
        let deadline_armed = deadline.armed();
        let mut events: u64 = 0;

        while let Some(ev) = self.queue.pop() {
            if ev.time > self.end {
                break;
            }
            if budget.is_some_and(|b| events >= b) {
                self.report.census = self.census;
                self.report.events = events;
                return Err(SimError::BudgetExhausted {
                    events,
                    partial: Box::new(self.report),
                });
            }
            // Cooperative deadline, polled every DEADLINE_CHECK_EVENTS
            // events so the disarmed hot path pays one branch per event
            // and an armed one touches the wall clock only rarely.
            if deadline_armed
                && events.is_multiple_of(DEADLINE_CHECK_EVENTS)
                && deadline.expired()
            {
                self.report.census = self.census;
                self.report.events = events;
                return Err(SimError::DeadlineExpired {
                    events,
                    partial: Box::new(self.report),
                });
            }
            events += 1;
            run_span.add_points(1);
            if let Some(o) = &self.obs {
                o.occupancy.record(self.n);
                match ev.kind {
                    EventKind::ModulationSwitch => o.switches.inc(),
                    EventKind::Arrival => o.arrivals.inc(),
                    EventKind::Retry { .. } => o.retries.inc(),
                    EventKind::Departure { .. } => o.departures.inc(),
                }
            }
            // Advance clocks: accumulate the utility integral and the
            // census dwell (clipped to the measured window).
            let dt = ev.time - self.t;
            if dt > 0.0 {
                self.integral += self.pi(self.n) * dt;
                let meas_lo = self.t.max(warmup);
                let meas_hi = ev.time.min(self.end);
                if meas_hi > meas_lo {
                    self.census.dwell(self.n, meas_hi - meas_lo);
                }
                self.t = ev.time;
            }

            match ev.kind {
                EventKind::ModulationSwitch => {
                    arrivals.switch(&mut self.rng);
                    // Redraw the pending arrival at the new rate (valid by
                    // memorylessness of the exponential); the superseded
                    // arrival event is dropped when popped.
                    let ia = arrivals.next_interarrival(&mut self.rng);
                    if ia.is_finite() {
                        live_arrival_seq = self.seq;
                        self.push(self.t + ia, EventKind::Arrival);
                    }
                    let so = arrivals.next_sojourn(&mut self.rng);
                    if so.is_finite() {
                        self.push(self.t + so, EventKind::ModulationSwitch);
                    }
                }
                EventKind::Arrival => {
                    if ev.seq != live_arrival_seq {
                        // Superseded by a modulation switch: skip.
                        continue;
                    }
                    let measured = self.t >= warmup;
                    if measured {
                        self.census.arrival_saw(self.n);
                    }
                    if let Some(w) = self.cfg.discipline.ewma_weight() {
                        self.load_estimate = (1.0 - w) * self.load_estimate + w * self.n as f64;
                    }
                    self.handle_admission_attempt(0, None, measured);
                    // Next arrival of the live stream.
                    let ia = arrivals.next_interarrival(&mut self.rng);
                    if ia.is_finite() {
                        live_arrival_seq = self.seq;
                        self.push(self.t + ia, EventKind::Arrival);
                    }
                }
                EventKind::Retry { attempt, holding, first_arrival } => {
                    let measured = first_arrival >= warmup;
                    self.report.retries += 1;
                    self.handle_admission_attempt(attempt, Some(holding), measured);
                }
                EventKind::Departure { slot } => {
                    let (admit_time, integral_at_admit, util_at_admission, admit_index, retries) =
                        self.flows.fields(slot);
                    let duration = self.t - admit_time;
                    let penalty = self
                        .cfg
                        .discipline
                        .retry_policy()
                        .map_or(0.0, |rp| rp.penalty * f64::from(retries));
                    let measured = admit_time >= warmup && self.t <= self.end;
                    if measured {
                        let time_avg = if duration > 0.0 {
                            (self.integral - integral_at_admit) / duration
                        } else {
                            util_at_admission
                        };
                        let max_pop = self.peaks.peak_since(admit_index);
                        self.report.completed += 1;
                        self.report.utility_at_admission.add(util_at_admission - penalty);
                        self.report.utility_time_avg.add(time_avg - penalty);
                        self.report.utility_worst.add(self.pi(max_pop) - penalty);
                    }
                    self.flows.depart(slot);
                    self.n -= 1;
                }
            }
        }

        self.report.census = self.census;
        self.report.events = events;
        Ok(self.report)
    }

    /// Shared admission logic for fresh arrivals and retries.
    fn handle_admission_attempt(
        &mut self,
        attempt: u32,
        holding_carryover: Option<f64>,
        measured: bool,
    ) {
        let cfg = self.cfg;
        if measured {
            self.report.attempts += 1;
        }
        if cfg.discipline.admits(self.n, self.load_estimate, cfg.capacity) {
            if let Some(o) = &self.obs {
                o.admitted.inc();
            }
            self.n += 1;
            let pop = self.n;
            let util = cfg.utility.value(cfg.capacity / pop as f64);
            let holding = holding_carryover.unwrap_or_else(|| cfg.holding.sample(&mut self.rng));
            // The newcomer raises everyone's worst-case population — the
            // tracker folds that in lazily instead of scanning the active
            // list (see flows.rs for the equivalence argument).
            let admit_index = self.peaks.on_admission(pop);
            let slot_id = self.flows.admit(self.t, self.integral, util, admit_index, attempt);
            self.push(self.t + holding, EventKind::Departure { slot: slot_id });
        } else {
            if let Some(o) = &self.obs {
                o.blocked.inc();
            }
            if measured {
                self.report.blocked_attempts += 1;
            }
            match cfg.discipline.retry_policy() {
                Some(rp) if attempt < rp.max_retries => {
                    let backoff =
                        bevra_load::ExpSampler::new(1.0 / rp.backoff_mean).sample(&mut self.rng);
                    let holding =
                        holding_carryover.unwrap_or_else(|| cfg.holding.sample(&mut self.rng));
                    self.push(
                        self.t + backoff,
                        EventKind::Retry { attempt: attempt + 1, holding, first_arrival: self.t },
                    );
                }
                _ => {
                    // Permanently lost: utility 0 minus accumulated retry
                    // penalties.
                    if measured {
                        let penalty = cfg
                            .discipline
                            .retry_policy()
                            .map_or(0.0, |rp| rp.penalty * f64::from(attempt));
                        self.report.lost += 1;
                        self.report.utility_at_admission.add(-penalty);
                        self.report.utility_time_avg.add(-penalty);
                        self.report.utility_worst.add(-penalty);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::RetryPolicy;
    use bevra_utility::{AdaptiveExp, Rigid, Saturating};

    fn base_cfg(capacity: f64, discipline: Discipline) -> SimConfig {
        SimConfig {
            capacity,
            discipline,
            // M/M/∞ with offered load 20 erlangs.
            arrivals: MixedPoisson::fixed(20.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 50.0,
            horizon: 2_000.0,
            seed: 42,
            max_events: None,
        }
    }

    #[test]
    fn mm_infinity_occupancy_is_poisson() {
        let report = Simulation::new(base_cfg(40.0, Discipline::BestEffort)).run();
        let occ = report.occupancy();
        // Mean ≈ 20, variance ≈ 20 (Poisson).
        assert!((occ.mean() - 20.0).abs() < 1.0, "mean {}", occ.mean());
        assert!((occ.variance() - 20.0).abs() < 3.0, "var {}", occ.variance());
    }

    #[test]
    fn pasta_arrival_view_matches_time_view() {
        let report = Simulation::new(base_cfg(40.0, Discipline::BestEffort)).run();
        let occ = report.occupancy();
        let seen = report.census.seen_by_arrivals();
        assert!((occ.mean() - seen.mean()).abs() < 1.0, "{} vs {}", occ.mean(), seen.mean());
    }

    #[test]
    fn reservation_caps_population() {
        let cfg = base_cfg(15.0, Discipline::Reservation { k_max: 15, retry: None });
        let report = Simulation::new(cfg).run();
        let occ = report.occupancy();
        assert_eq!(occ.len() as u64, 16, "population never exceeds k_max");
        assert!(report.blocking_rate() > 0.05, "blocking {}", report.blocking_rate());
    }

    #[test]
    fn best_effort_never_blocks() {
        let report = Simulation::new(base_cfg(10.0, Discipline::BestEffort)).run();
        assert_eq!(report.blocked_attempts, 0);
        assert_eq!(report.lost, 0);
        assert_eq!(report.blocking_rate(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let r1 = Simulation::new(base_cfg(25.0, Discipline::BestEffort)).run();
        let r2 = Simulation::new(base_cfg(25.0, Discipline::BestEffort)).run();
        assert_eq!(r1.completed, r2.completed);
        assert!((r1.utility_time_avg.mean() - r2.utility_time_avg.mean()).abs() < 1e-15);
        let mut cfg3 = base_cfg(25.0, Discipline::BestEffort);
        cfg3.seed = 43;
        let r3 = Simulation::new(cfg3).run();
        assert_ne!(r1.completed, r3.completed);
    }

    #[test]
    fn heap_and_wheel_agree_bitwise() {
        for (cap, d) in [
            (25.0, Discipline::BestEffort),
            (15.0, Discipline::Reservation { k_max: 15, retry: None }),
            (
                15.0,
                Discipline::Reservation {
                    k_max: 15,
                    retry: Some(RetryPolicy::new(6, 2.0, 0.05)),
                },
            ),
        ] {
            let sim = Simulation::new(base_cfg(cap, d));
            let heap = sim.run_on(QueueKind::Heap);
            let wheel = sim.run_on(QueueKind::Wheel);
            assert_eq!(heap.digest(), wheel.digest(), "cap {cap}");
            assert_eq!(heap.events, wheel.events, "cap {cap}");
        }
    }

    #[test]
    fn matches_legacy_loop_bitwise() {
        let cfg = base_cfg(25.0, Discipline::BestEffort);
        let new = Simulation::new(cfg.clone()).run();
        let old = crate::legacy::run(&cfg);
        assert_eq!(new.digest(), old.digest());
        assert_eq!(new.events, old.events);
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let cfgs: Vec<SimConfig> = [20.0, 25.0, 40.0]
            .iter()
            .map(|&c| base_cfg(c, Discipline::BestEffort))
            .collect();
        let batch = Simulation::run_batch(&cfgs);
        assert_eq!(batch.len(), cfgs.len());
        for (cfg, rep) in cfgs.iter().zip(&batch) {
            let solo = Simulation::new(cfg.clone()).run();
            assert_eq!(solo.completed, rep.completed);
            assert_eq!(
                solo.utility_time_avg.mean().to_bits(),
                rep.utility_time_avg.mean().to_bits()
            );
        }
    }

    #[test]
    fn worst_case_utility_below_time_average() {
        let report = Simulation::new(base_cfg(25.0, Discipline::BestEffort)).run();
        assert!(report.utility_worst.mean() <= report.utility_time_avg.mean() + 1e-12);
    }

    #[test]
    fn retries_eventually_admit_most_flows() {
        // Adequately provisioned link (offered 20 erlangs, k_max = 30):
        // occasional blocking, but retries with a decorrelating backoff get
        // nearly everyone in. (At k_max ≤ offered load the system enters a
        // retry storm and real loss is unavoidable — see the overload test.)
        let rp = RetryPolicy::new(20, 3.0, 0.1);
        let cfg = base_cfg(30.0, Discipline::Reservation { k_max: 30, retry: Some(rp) });
        let report = Simulation::new(cfg).run();
        assert!(report.retries > 0, "some retries happen");
        let lost_frac = report.lost as f64 / (report.completed + report.lost).max(1) as f64;
        assert!(lost_frac < 0.001, "lost fraction {lost_frac}");

        // Overload (offered 20 on k_max 15): retries cannot rescue everyone;
        // a substantial fraction of flows is lost despite 20 attempts.
        let cfg2 = base_cfg(15.0, Discipline::Reservation { k_max: 15, retry: Some(rp) });
        let report2 = Simulation::new(cfg2).run();
        let lost_frac2 = report2.lost as f64 / (report2.completed + report2.lost).max(1) as f64;
        assert!(lost_frac2 > 0.05, "overload lost fraction {lost_frac2}");
    }

    #[test]
    fn rigid_utility_reservation_beats_best_effort_in_overload() {
        // Offered load 20 on capacity 15 with rigid flows: best-effort
        // collapses (everyone's share < 1 most of the time), reservations
        // keep admitted flows whole.
        let be = Simulation::new(base_cfg_with(
            15.0,
            Discipline::BestEffort,
            Arc::new(Rigid::unit()),
        ))
        .run();
        let rv = Simulation::new(base_cfg_with(
            15.0,
            Discipline::Reservation { k_max: 15, retry: None },
            Arc::new(Rigid::unit()),
        ))
        .run();
        assert!(
            rv.utility_at_admission.mean() > be.utility_at_admission.mean() + 0.1,
            "reservation {} vs best effort {}",
            rv.utility_at_admission.mean(),
            be.utility_at_admission.mean()
        );
    }

    fn base_cfg_with(capacity: f64, d: Discipline, u: Arc<dyn Utility>) -> SimConfig {
        let mut cfg = base_cfg(capacity, d);
        cfg.utility = u;
        cfg
    }

    #[test]
    fn measurement_based_tracks_threshold_behaviour() {
        // With ewma_weight = 1 (instantaneous estimate) and target share 1,
        // MBAC behaves like a hard threshold at k_max = C; with a slow
        // estimator it admits during bursts that the threshold would block.
        let fast = Simulation::new(base_cfg(
            15.0,
            Discipline::MeasurementBased { target_share: 1.0, ewma_weight: 1.0, retry: None },
        ))
        .run();
        let hard = Simulation::new(base_cfg(
            15.0,
            Discipline::Reservation { k_max: 15, retry: None },
        ))
        .run();
        // Same order of blocking as the hard threshold.
        assert!(
            (fast.blocking_rate() - hard.blocking_rate()).abs() < 0.12,
            "fast-EWMA MBAC {} vs threshold {}",
            fast.blocking_rate(),
            hard.blocking_rate()
        );
        let slow = Simulation::new(base_cfg(
            15.0,
            Discipline::MeasurementBased { target_share: 1.0, ewma_weight: 0.02, retry: None },
        ))
        .run();
        // The sluggish estimator lets bursts through: population exceeds
        // the nominal threshold at least occasionally.
        assert!(
            slow.occupancy().len() as u64 > 16,
            "slow MBAC must overshoot the threshold occupancy"
        );
    }

    #[test]
    fn budget_exhaustion_yields_consistent_partial_report() {
        let mut cfg = base_cfg(40.0, Discipline::BestEffort);
        cfg.max_events = Some(5_000);
        let err = Simulation::new(cfg.clone()).run_checked().expect_err("budget must fire");
        let SimError::BudgetExhausted { events, partial } = err else {
            panic!("expected BudgetExhausted, got {err}");
        };
        assert_eq!(events, 5_000, "a budget of N processes exactly N events");
        assert_eq!(partial.events, 5_000, "partial report carries the event count");
        assert!(format!("{}", SimError::BudgetExhausted {
            events,
            partial: partial.clone()
        })
        .contains("5000 event(s)"));
        // The partial report is a usable, self-consistent truncation: the
        // census was flushed, counters are nonzero, and occupancy still
        // tabulates (5000 events at ~40 events/time-unit is ~125 time
        // units — well past the 50-unit warm-up).
        assert!(partial.completed > 0, "some flows completed before the cut-off");
        assert!(partial.attempts >= partial.completed);
        let occ = partial.occupancy();
        assert!(occ.mean() > 0.0);
        // `run()` degrades to exactly that partial report.
        let degraded = Simulation::new(cfg.clone()).run();
        assert_eq!(degraded.digest(), partial.digest(), "run() returns the same truncation");
        // And the truncation is deterministic: same seed, same budget,
        // same digest.
        let again = Simulation::new(cfg).run();
        assert_eq!(again.digest(), degraded.digest());
    }

    #[test]
    fn budget_truncation_matches_across_queues() {
        // The watchdog counts *processed* events, which both queues pop in
        // the same order — so even truncated runs are bit-identical.
        let mut cfg = base_cfg(40.0, Discipline::BestEffort);
        cfg.max_events = Some(5_000);
        let sim = Simulation::new(cfg);
        let heap = sim.run_on(QueueKind::Heap);
        let wheel = sim.run_on(QueueKind::Wheel);
        assert_eq!(heap.digest(), wheel.digest());
    }

    #[test]
    fn unbounded_budget_matches_legacy_run() {
        let cfg = base_cfg(25.0, Discipline::BestEffort);
        let checked = Simulation::new(cfg.clone()).run_checked().expect("no budget configured");
        let legacy = Simulation::new(cfg).run();
        assert_eq!(checked.digest(), legacy.digest());
    }

    #[test]
    fn elastic_utility_prefers_admitting_everyone() {
        let be = Simulation::new(base_cfg_with(
            15.0,
            Discipline::BestEffort,
            Arc::new(Saturating::new(0.2)),
        ))
        .run();
        let rv = Simulation::new(base_cfg_with(
            15.0,
            Discipline::Reservation { k_max: 10, retry: None },
            Arc::new(Saturating::new(0.2)),
        ))
        .run();
        // Counting blocked flows as zeros, aggressive admission control
        // wastes elastic utility.
        assert!(be.utility_at_admission.mean() > rv.utility_at_admission.mean());
    }
}
