//! Hierarchical timer-wheel event queue — the production pending-event set.
//!
//! A binary heap pays `O(log n)` pointer-chasing comparisons per push *and*
//! per pop; at a million pending departures every operation walks ~20 cache
//! lines. The wheel instead hashes each event by its time into one of
//! `256` level-0 buckets of width `granularity`; coarser levels cover
//! `256×`, `256²×`, … that span, and events beyond the top level wait in an
//! unsorted overflow list. Push is O(1). Pop sorts the *current* bucket
//! lazily (a handful of entries under a well-chosen granularity) and then
//! drains it back-to-front, so the amortized per-event cost is a few
//! cache-resident moves — the classic calendar-queue result.
//!
//! # Exact order preservation
//!
//! The dequeue order is **bitwise-identical** to [`BinaryHeapQueue`]'s:
//! strictly ascending `(time, seq)` over the pending set, with
//! [`f64::total_cmp`] time semantics. Bucketing is monotone in time
//! (`t₁ ≤ t₂ ⇒ tick(t₁) ≤ tick(t₂)`), buckets are visited in ascending
//! tick order, and every bucket is sorted by `(time, seq)` before
//! draining — so the wheel is a drop-in replacement whose only observable
//! difference is speed. `tests/timer_wheel.rs` property-checks this
//! equivalence over randomized streams (same-timestamp ties, far-future
//! rollover into the overflow list, interleaved push/pop) with shrinking,
//! and mutation-tests the harness by nudging the slot hash off by one.
//!
//! [`BinaryHeapQueue`]: crate::queue::BinaryHeapQueue
//!
//! # Time domain
//!
//! Times may be any non-NaN `f64`; negative and `+∞` stamps are routed to
//! the current bucket / overflow respectively and still pop in total
//! order. `NaN` is ordered last (as `total_cmp` does) but callers are
//! expected never to schedule one — the simulator checks finiteness at
//! every push site.

use crate::events::Entry;
use crate::queue::EventQueue;

/// log₂ of the slots per level.
const SLOT_BITS: u32 = 8;
/// Buckets per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask within a level.
const MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels; the combined span is `granularity · 256³` before events
/// fall into the overflow list.
const LEVELS: usize = 3;

/// Default level-0 bucket width, in simulated time units. Callers that
/// know their event density should size the bucket near the mean event
/// spacing instead (see [`TimerWheelQueue::with_granularity`]).
pub const DEFAULT_GRANULARITY: f64 = 1.0 / 64.0;

/// Environment variable overriding the wheel's level-0 bucket width for
/// simulator runs (a positive `f64`, in simulated time units). Purely a
/// performance knob: any granularity produces the identical dequeue
/// order, which the determinism suite asserts.
pub const WHEEL_GRANULARITY_ENV: &str = "BEVRA_SIM_WHEEL_GRANULARITY";

/// One wheel level: `SLOTS` buckets plus a 256-bit occupancy bitmap so
/// advancing the cursor skips empty buckets in four `u64` scans.
struct Level {
    slots: Vec<Vec<Entry>>,
    occupied: [u64; SLOTS / 64],
    len: usize,
}

impl Level {
    fn new() -> Self {
        Self { slots: (0..SLOTS).map(|_| Vec::new()).collect(), occupied: [0; SLOTS / 64], len: 0 }
    }

    fn insert(&mut self, slot: usize, e: Entry) {
        self.slots[slot].push(e);
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        self.len += 1;
    }

    /// Take the whole bucket at `slot`, clearing its occupancy bit.
    fn take(&mut self, slot: usize) -> Vec<Entry> {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        let bucket = std::mem::take(&mut self.slots[slot]);
        self.len -= bucket.len();
        bucket
    }

    /// First occupied slot index `>= from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from >> 6;
        let mut bits = self.occupied[word] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((word << 6) + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= SLOTS / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

/// Hierarchical timer-wheel implementation of [`EventQueue`].
///
/// See the [module docs](self) for the design; construct with
/// [`TimerWheelQueue::new`] (default granularity) or
/// [`TimerWheelQueue::with_granularity`].
pub struct TimerWheelQueue {
    /// Level-0 bucket width and its reciprocal (`tick = time · inv_g`).
    inv_g: f64,
    /// Tick of the bucket currently being drained.
    cur: u64,
    /// The current bucket; sorted descending by `(time, seq)` when
    /// `sorted` holds, so pop-min is a pop from the back.
    current: Vec<Entry>,
    sorted: bool,
    levels: Vec<Level>,
    /// Events beyond the top level's span, unsorted.
    overflow: Vec<Entry>,
    len: usize,
    /// Test-only mutation hook: XOR-perturbs the level-0 slot hash.
    slot_nudge: u64,
}

impl Default for TimerWheelQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheelQueue {
    /// New wheel with [`DEFAULT_GRANULARITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_granularity(DEFAULT_GRANULARITY)
    }

    /// New wheel whose level-0 buckets are `granularity` time units wide.
    /// Amortized cost is minimized when the bucket width is near the mean
    /// spacing between pending events; any positive value is *correct*.
    ///
    /// # Panics
    ///
    /// Panics unless `granularity` is positive and finite.
    #[must_use]
    pub fn with_granularity(granularity: f64) -> Self {
        assert!(
            granularity > 0.0 && granularity.is_finite(),
            "wheel granularity must be positive and finite, got {granularity}"
        );
        Self {
            inv_g: granularity.recip(),
            cur: 0,
            current: Vec::new(),
            sorted: true,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: Vec::new(),
            len: 0,
            slot_nudge: 0,
        }
    }

    /// Mutation-test hook: XOR the level-0 slot index with `nudge`,
    /// mis-bucketing events without touching anything else. The
    /// differential property suite uses this to prove it *would* catch a
    /// bucket-indexing bug; never use it for real work.
    #[doc(hidden)]
    #[must_use]
    pub fn with_slot_nudge(mut self, nudge: u64) -> Self {
        self.slot_nudge = nudge & MASK;
        self
    }

    /// The bucket index of time `t`: monotone non-decreasing in `t`,
    /// saturating at the extremes (`t ≤ 0 → 0`, `+∞`/`NaN` → `u64::MAX`).
    fn tick(&self, t: f64) -> u64 {
        if t.is_nan() {
            return u64::MAX;
        }
        // `as` casts saturate: negatives to 0, overflow/+∞ to u64::MAX.
        (t * self.inv_g) as u64
    }

    /// Route one entry to the current bucket, a wheel level, or overflow,
    /// based on the highest differing bit between its tick and `cur`.
    fn place(&mut self, e: Entry) {
        let tick = self.tick(e.time);
        if tick <= self.cur {
            if self.sorted {
                // Keep the drain bucket sorted (descending) by ordered
                // insertion — the common "next arrival lands in the bucket
                // being drained" case must not trigger a full re-sort.
                let pos = self.current.partition_point(|x| *x > e);
                self.current.insert(pos, e);
            } else {
                self.current.push(e);
            }
            return;
        }
        let diff = tick ^ self.cur;
        for (level, wheel) in self.levels.iter_mut().enumerate() {
            let bits = SLOT_BITS * (level as u32 + 1);
            if diff >> bits == 0 {
                let mut slot = (tick >> (bits - SLOT_BITS)) & MASK;
                if level == 0 {
                    slot ^= self.slot_nudge;
                }
                wheel.insert(slot as usize, e);
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Refill `current` from the wheels/overflow. Returns `false` when the
    /// queue is exhausted.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            // Innermost non-empty level first: its buckets are the finest.
            let mut cascaded = false;
            for level in 0..LEVELS {
                if self.levels[level].len == 0 {
                    continue;
                }
                let bits = SLOT_BITS * (level as u32);
                // The cursor's slot within this level; buckets at or before
                // it are empty by the aligned-window invariant.
                let cur_slot = ((self.cur >> bits) & MASK) as usize;
                let Some(slot) = self.levels[level].next_occupied(cur_slot) else {
                    continue;
                };
                let bucket = self.levels[level].take(slot);
                // Advance the cursor to the bucket's base tick. For level 0
                // that *is* the bucket; coarser buckets cascade: their
                // entries re-place into finer levels relative to the new
                // cursor.
                let base = (self.cur >> (bits + SLOT_BITS)) << (bits + SLOT_BITS);
                self.cur = base | ((slot as u64) << bits);
                if level == 0 {
                    self.current = bucket;
                    self.sorted = false;
                    return true;
                }
                self.len -= bucket.len();
                for e in bucket {
                    self.len += 1;
                    self.place(e);
                }
                cascaded = true;
                break;
            }
            if cascaded {
                // Entries may have landed directly in `current` (tick ==
                // new cursor); if so we are done, else scan again.
                if !self.current.is_empty() {
                    return true;
                }
                continue;
            }
            // All wheels empty: restart from the overflow list, if any.
            if self.overflow.is_empty() {
                return false;
            }
            let min = self
                .overflow
                .iter()
                .copied()
                .min()
                .map(|e| self.tick(e.time))
                .unwrap_or(u64::MAX);
            self.cur = min;
            let pending = std::mem::take(&mut self.overflow);
            self.len -= pending.len();
            for e in pending {
                self.len += 1;
                self.place(e);
            }
            // The minimum landed in `current`; loop once more to return it
            // (or to cascade, if ticks collide oddly under saturation).
            if !self.current.is_empty() {
                return true;
            }
        }
    }
}

impl EventQueue for TimerWheelQueue {
    fn push(&mut self, e: Entry) {
        self.len += 1;
        self.place(e);
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        if !self.sorted {
            // Descending, so pop-min is a pop from the back.
            self.current.sort_unstable_by(|a, b| b.cmp(a));
            self.sorted = true;
        }
        let e = self.current.pop();
        if e.is_some() {
            self.len -= 1;
        }
        e
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::queue::{BinaryHeapQueue, EventQueue};

    fn entry(t: f64, seq: u64) -> Entry {
        Entry { time: t, seq, kind: EventKind::Arrival }
    }

    fn drain(q: &mut impl EventQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.to_bits(), e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = TimerWheelQueue::new();
        q.push(entry(3.0, 0));
        q.push(entry(1.0, 1));
        q.push(entry(2.0, 2));
        q.push(entry(1.0, 0));
        assert_eq!(q.len(), 4);
        let order: Vec<(f64, u64)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (2.0, 2), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn matches_heap_on_lcg_workload_with_interleaved_pops() {
        for granularity in [1.0 / 64.0, 1.0, 17.3, 1e-6] {
            let mut w = TimerWheelQueue::with_granularity(granularity);
            let mut h = BinaryHeapQueue::new();
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
            let mut out_w = Vec::new();
            let mut out_h = Vec::new();
            for seq in 0..4_000u64 {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                // Mixed scale: mostly near times, occasional far-future.
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                let t = if seq % 97 == 0 { u * 1e9 } else { u * 50.0 };
                w.push(entry(t, seq));
                h.push(entry(t, seq));
                if seq % 3 == 2 {
                    out_w.push(w.pop().map(|e| (e.time.to_bits(), e.seq)));
                    out_h.push(h.pop().map(|e| (e.time.to_bits(), e.seq)));
                }
            }
            out_w.extend(drain(&mut w).into_iter().map(Some));
            out_h.extend(drain(&mut h).into_iter().map(Some));
            assert_eq!(out_w, out_h, "granularity {granularity}");
        }
    }

    #[test]
    fn far_future_rollover_through_overflow() {
        let mut q = TimerWheelQueue::with_granularity(1.0);
        // Top level spans 256^3 ticks; these straddle every level plus the
        // overflow list, in scrambled insertion order.
        let times =
            [1e12, 3.0, 260.0, 70_000.0, 1.7e7, 2.0e12, 5.0e9, 0.5, 66_000.0, 2.5];
        for (seq, &t) in times.iter().enumerate() {
            q.push(entry(t, seq as u64));
        }
        let mut sorted: Vec<f64> = times.to_vec();
        sorted.sort_by(f64::total_cmp);
        let drained: Vec<f64> =
            std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(drained, sorted);
    }

    #[test]
    fn exotic_times_stay_totally_ordered() {
        let mut w = TimerWheelQueue::new();
        let mut h = BinaryHeapQueue::new();
        for (seq, t) in [-3.0, 0.0, -0.0, f64::INFINITY, 1e300, 4.2, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            w.push(entry(t, seq as u64));
            h.push(entry(t, seq as u64));
        }
        assert_eq!(drain(&mut w), drain(&mut h));
    }

    #[test]
    fn push_before_cursor_still_pops_next() {
        let mut q = TimerWheelQueue::with_granularity(1.0);
        q.push(entry(50.0, 0));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        // Cursor is now at tick 50; a (contract-violating in the sim, but
        // allowed by the trait) earlier push must still come out before
        // later events, matching what a heap would do.
        q.push(entry(10.0, 1));
        q.push(entry(60.0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn slot_nudge_breaks_order_detectably() {
        // The mutation hook must actually corrupt dequeue order on a
        // stream that spans several level-0 buckets — otherwise the
        // differential property test can't claim teeth.
        let mut w = TimerWheelQueue::with_granularity(1.0).with_slot_nudge(1);
        let mut h = BinaryHeapQueue::new();
        for seq in 0..64u64 {
            let t = (seq as f64) * 1.5;
            w.push(entry(t, seq));
            h.push(entry(t, seq));
        }
        assert_ne!(drain(&mut w), drain(&mut h), "nudged wheel must misorder");
    }

    #[test]
    fn len_tracks_through_cascades() {
        let mut q = TimerWheelQueue::with_granularity(1.0);
        for seq in 0..1_000u64 {
            q.push(entry((seq as f64) * 321.7, seq));
        }
        assert_eq!(q.len(), 1_000);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
            assert_eq!(q.len(), 1_000 - n);
        }
        assert_eq!(n, 1_000);
        assert!(q.is_empty());
    }
}
