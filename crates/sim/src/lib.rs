//! Flow-level discrete-event simulator of a bottleneck link.
//!
//! The paper's analysis is purely static: it posits a stationary load
//! distribution `P(k)` and evaluates utilities in expectation. The authors
//! had no executable system. This crate supplies one — a deterministic,
//! seeded, event-driven simulator in which flows actually arrive, share the
//! link, get admitted or blocked, retry, and depart — so the analytical
//! model can be validated against a mechanistic process rather than taken
//! on faith.
//!
//! # Correspondence with the paper's load families
//!
//! Flows arrive as a Poisson process whose rate is *modulated*: re-drawn
//! from a mixing distribution at exponentially-spaced epochs
//! ([`arrivals::MixedPoisson`]). With exponential holding times the
//! stationary occupancy of this M/G/∞-like system is a **mixed Poisson**,
//! and the classical correspondences give exactly the paper's three
//! families:
//!
//! * fixed rate → Poisson occupancy;
//! * exponentially-mixed rate → geometric ("exponential") occupancy;
//! * Pareto-mixed rate → power-law ("algebraic") occupancy tail.
//!
//! # Measured quantities
//!
//! Per completed flow the simulator records utility three ways, matching
//! the model and both directions of its §5.1 sampling discussion: at the
//! admission instant (PASTA ⇒ comparable to the basic model), time-averaged
//! over the flow's lifetime, and at the worst (maximum-population) moment
//! experienced. Blocked flows score zero; retries incur the §5.2 penalty
//! `α`. A time-weighted occupancy census yields an empirical `P(k)` that
//! can be fed straight back into `bevra-core`'s `DiscreteModel`
//! (re-exported here for convenience via `bevra_load::Tabulated`).

pub mod arrivals;
pub mod census;
pub mod ckpt;
pub mod events;
pub mod fleet;
pub mod flows;
pub mod holding;
pub mod legacy;
pub mod link;
pub mod queue;
pub mod runner;
pub mod stats;
pub mod wheel;

pub use arrivals::{MixedPoisson, RateMixing};
pub use census::Census;
pub use ckpt::FleetCheckpoint;
pub use fleet::{Fleet, FleetConfig, FleetHealth, FleetReport, ShardFailure};
pub use holding::HoldingDist;
pub use link::{Discipline, RetryPolicy};
pub use runner::{QueueKind, SimConfig, SimError, SimReport, Simulation};
pub use stats::Welford;
pub use wheel::TimerWheelQueue;
