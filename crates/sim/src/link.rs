//! Link disciplines: best-effort sharing versus reservation admission
//! control with optional retries.

/// Retry behaviour of blocked reservation requests (§5.2 made mechanistic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries before the flow gives up (counts attempts after the
    /// first).
    pub max_retries: u32,
    /// Mean of the exponential backoff before each retry.
    pub backoff_mean: f64,
    /// Utility penalty per retry — the paper's `α`.
    pub penalty: f64,
}

impl RetryPolicy {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive backoff or a penalty outside `[0, 1]`.
    #[must_use]
    pub fn new(max_retries: u32, backoff_mean: f64, penalty: f64) -> Self {
        assert!(backoff_mean > 0.0, "backoff mean must be positive");
        assert!((0.0..=1.0).contains(&penalty), "penalty must be in [0, 1]");
        Self { max_retries, backoff_mean, penalty }
    }
}

/// How the link treats flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// Every flow is admitted; all active flows share the capacity equally.
    BestEffort,
    /// At most `k_max` concurrent flows; a request arriving at the limit is
    /// blocked (scoring zero utility) or, with a [`RetryPolicy`], comes
    /// back after a backoff.
    Reservation {
        /// Admission threshold `k_max(C)`.
        k_max: u64,
        /// Optional retry behaviour for blocked requests.
        retry: Option<RetryPolicy>,
    },
    /// Measurement-based admission control in the spirit of the
    /// integrated-services literature the paper builds on (Jamin et al.,
    /// ToN 1997): instead of the instantaneous population, admission
    /// consults an EWMA estimate of the load, admitting while
    /// `estimate + 1 ≤ C / target_share`. Burstier than the hard threshold
    /// — it over-admits after quiet periods and under-admits after busy
    /// ones, which is exactly the behaviour the benches quantify.
    MeasurementBased {
        /// Per-flow bandwidth the controller tries to protect (the rigid
        /// b̄, or the adaptive knee).
        target_share: f64,
        /// EWMA weight in (0, 1]: 1 = instantaneous (threshold behaviour).
        ewma_weight: f64,
        /// Optional retry behaviour for blocked requests.
        retry: Option<RetryPolicy>,
    },
}

impl Discipline {
    /// Whether a new flow may join, given the instantaneous population and
    /// the admission controller's current load estimate (ignored by the
    /// non-measured variants).
    #[must_use]
    pub fn admits(&self, current: u64, estimate: f64, capacity: f64) -> bool {
        match *self {
            Discipline::BestEffort => true,
            Discipline::Reservation { k_max, .. } => current < k_max,
            Discipline::MeasurementBased { target_share, .. } => {
                (estimate + 1.0) * target_share <= capacity
            }
        }
    }

    /// The retry policy, if any.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        match *self {
            Discipline::Reservation { retry, .. }
            | Discipline::MeasurementBased { retry, .. } => retry,
            Discipline::BestEffort => None,
        }
    }

    /// The EWMA weight of a measurement-based controller (`None` otherwise).
    #[must_use]
    pub fn ewma_weight(&self) -> Option<f64> {
        match *self {
            Discipline::MeasurementBased { ewma_weight, .. } => Some(ewma_weight),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_effort_always_admits() {
        assert!(Discipline::BestEffort.admits(0, 0.0, 1.0));
        assert!(Discipline::BestEffort.admits(1_000_000, 1e9, 1.0));
        assert!(Discipline::BestEffort.retry_policy().is_none());
    }

    #[test]
    fn reservation_enforces_threshold() {
        let d = Discipline::Reservation { k_max: 10, retry: None };
        assert!(d.admits(9, 0.0, 10.0));
        assert!(!d.admits(10, 0.0, 10.0));
        assert!(!d.admits(11, 0.0, 10.0));
    }

    #[test]
    fn measurement_based_consults_estimate_not_population() {
        let d = Discipline::MeasurementBased {
            target_share: 1.0,
            ewma_weight: 0.1,
            retry: None,
        };
        // Population is irrelevant; the estimate is what gates admission.
        assert!(d.admits(1_000, 5.0, 10.0));
        assert!(!d.admits(0, 9.5, 10.0));
        assert_eq!(d.ewma_weight(), Some(0.1));
        assert_eq!(Discipline::BestEffort.ewma_weight(), None);
    }

    #[test]
    fn retry_policy_roundtrip() {
        let rp = RetryPolicy::new(3, 2.0, 0.1);
        let d = Discipline::Reservation { k_max: 5, retry: Some(rp) };
        assert_eq!(d.retry_policy(), Some(rp));
    }

    #[test]
    #[should_panic(expected = "penalty must be in [0, 1]")]
    fn bad_penalty_rejected() {
        let _ = RetryPolicy::new(1, 1.0, 2.0);
    }
}
