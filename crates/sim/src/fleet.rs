//! Sharded multi-lane simulation — the ≥10M-flow execution layer.
//!
//! A *fleet* runs `lanes` independent virtual event loops of one base
//! configuration, each lane seeded by
//! [`rand::derive_seed`]`(base.seed, lane)`, and merges their
//! reports into a single pooled [`SimReport`]. Lanes are the **semantic**
//! unit: the fleet's result is defined as "lane 0's report merged with
//! lane 1's, merged with lane 2's, …" — a fold in strict lane order.
//!
//! *Shards* are the **execution** unit: `BEVRA_SIM_SHARDS` (default: the
//! worker-thread count) groups lanes into contiguous chunks via
//! [`bevra_engine::chunk_ranges`], and each shard runs its lanes serially
//! on one pool worker. Because the chunking is contiguous and results are
//! concatenated in shard order, the merge visits lanes in index order *no
//! matter how many shards or threads executed them* — which is what makes
//! [`FleetReport::merged`]'s digest bitwise-invariant under
//! `BEVRA_SIM_SHARDS` and `BEVRA_THREADS` (pinned by
//! `tests/determinism.rs` and `tests/sim_scale.rs`).
//!
//! # Failure isolation
//!
//! Each shard runs under the engine pool's panic isolation
//! ([`bevra_engine::parallel_map_isolated`]) and passes through the
//! `panic:sim/shard` fault site keyed by shard index, so chaos runs can
//! trip exactly one shard. A failed shard degrades to a
//! [`ShardFailure`] entry in [`FleetHealth`]; surviving shards' lanes
//! merge exactly as they would have otherwise (their per-lane digests are
//! unchanged — the chaos suite pins this). Budget exhaustion inside a
//! lane (the `sim/budget` watchdog) is *not* a failure: the lane's
//! partial report merges and the lane is counted in
//! [`FleetHealth::truncated_lanes`], keeping the watchdog per-shard
//! deterministic.

use crate::runner::{QueueKind, SimConfig, SimError, SimReport, Simulation};
use bevra_obs::metrics;
use rand::derive_seed;

/// Environment variable setting how many shards (contiguous lane chunks)
/// a fleet run is split into. Purely an execution knob: any value yields
/// the identical merged report. Defaults to the engine worker count.
pub const SHARDS_ENV: &str = "BEVRA_SIM_SHARDS";

/// Upper bound on an explicitly requested shard count (mirrors the
/// engine's [`MAX_THREADS`](bevra_engine::MAX_THREADS) policy).
pub const MAX_SHARDS: usize = 512;

/// Number of shards a fleet run will use: `BEVRA_SIM_SHARDS` if it parses
/// as an integer in `1..=`[`MAX_SHARDS`], else the engine worker count.
#[must_use]
pub fn shard_count() -> usize {
    bevra_num::env::env_count(SHARDS_ENV, MAX_SHARDS, bevra_engine::thread_count())
}

/// Configuration of a fleet run: one base [`SimConfig`] replicated across
/// independently-seeded lanes.
#[derive(Clone)]
pub struct FleetConfig {
    /// Per-lane simulation parameters. `base.seed` is the fleet's master
    /// seed; lane `i` runs with `derive_seed(base.seed, i)`.
    pub base: SimConfig,
    /// Number of independent virtual event loops. Fixed per config —
    /// changing it changes the result; changing shards/threads does not.
    pub lanes: u32,
}

/// One failed shard, for the health ledger.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard index (into the run's contiguous lane chunking).
    pub shard: u32,
    /// Lanes the shard covered, all of which produced no report.
    pub lanes: std::ops::Range<u32>,
    /// The failure, rendered as text (panic payload or missing slot).
    pub error: String,
}

/// `SweepHealth`-style accounting of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    /// Lanes whose reports merged into the pooled result.
    pub ok_lanes: u32,
    /// Of the ok lanes, how many were truncated by the `sim/budget`
    /// watchdog (their partial reports still merged).
    pub truncated_lanes: u32,
    /// Shards that panicked (twice — the pool retries once) or whose
    /// result slot was never filled.
    pub failed: Vec<ShardFailure>,
}

impl FleetHealth {
    /// True when every lane merged.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }

    /// Lanes lost to failed shards.
    #[must_use]
    pub fn failed_lanes(&self) -> u32 {
        self.failed.iter().map(|f| f.lanes.end - f.lanes.start).sum()
    }
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// All surviving lanes' reports, folded in strict lane order.
    /// `merged.digest()` is the fleet's canonical digest — invariant
    /// under `BEVRA_SIM_SHARDS`, `BEVRA_THREADS`, and `BEVRA_SIM_QUEUE`.
    pub merged: SimReport,
    /// Per-lane digests (`None` for lanes lost to a failed shard) — the
    /// accounting granularity the chaos suite checks.
    pub lane_digests: Vec<Option<u64>>,
    /// Failure/truncation accounting.
    pub health: FleetHealth,
    /// Wall-clock seconds the fleet spent executing shards.
    pub seconds: f64,
}

impl FleetReport {
    /// Events per wall-clock second across all surviving lanes — the
    /// headline throughput figure (also exported as the
    /// `sim/fleet/events_per_sec` gauge).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.merged.events as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A fleet instance. Create with [`Fleet::new`], run with [`Fleet::run`].
pub struct Fleet {
    cfg: FleetConfig,
}

impl Fleet {
    /// New fleet from a config.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0` or the base config is invalid (see
    /// [`Simulation::new`]).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.lanes > 0, "a fleet needs at least one lane");
        assert!(cfg.base.capacity > 0.0, "capacity must be positive");
        assert!(cfg.base.horizon > 0.0, "horizon must be positive");
        Self { cfg }
    }

    /// The [`SimConfig`] lane `lane` runs: the base with its derived seed.
    #[must_use]
    pub fn lane_config(&self, lane: u32) -> SimConfig {
        let mut cfg = self.cfg.base.clone();
        cfg.seed = derive_seed(self.cfg.base.seed, u64::from(lane));
        cfg
    }

    /// Run the fleet at the ambient shard count ([`shard_count`]) and
    /// queue kind (`BEVRA_SIM_QUEUE`).
    #[must_use]
    pub fn run(&self) -> FleetReport {
        self.run_on(shard_count(), QueueKind::from_env())
    }

    /// Run the fleet with an explicit shard count and queue kind — the
    /// determinism suite calls this with several shard counts and asserts
    /// one digest.
    #[must_use]
    pub fn run_on(&self, shards: usize, queue: QueueKind) -> FleetReport {
        let lanes = self.cfg.lanes as usize;
        let mut sp = bevra_obs::span("sim/fleet");
        sp.add_points(lanes as u64);
        let ranges = bevra_engine::chunk_ranges(lanes, shards.max(1));
        let started = std::time::Instant::now();

        // One pool item per shard; each shard runs its lanes serially.
        // Shard results carry (lane, report, truncated) tuples in lane
        // order, so concatenating shard outputs in shard order visits
        // lanes strictly in index order.
        let shard_results = bevra_engine::parallel_map_isolated(
            &ranges,
            bevra_engine::thread_count().min(ranges.len()),
            |range| {
                // `shard` is this chunk's index in the fixed partition —
                // derivable from the range itself, so the fault key is
                // stable for a given (lanes, shards) pair.
                let shard = ranges.iter().position(|r| r == range).unwrap_or(0) as u64;
                bevra_faults::panic_point("sim/shard", shard);
                let mut sh = bevra_obs::span("sim/fleet/shard");
                sh.add_points(range.len() as u64);
                let mut out = Vec::with_capacity(range.len());
                for lane in range.clone() {
                    let cfg = self.lane_config(lane as u32);
                    let (report, truncated) =
                        match Simulation::new(cfg).run_checked_on(queue) {
                            Ok(r) => (r, false),
                            Err(SimError::BudgetExhausted { partial, .. }) => (*partial, true),
                        };
                    out.push((lane as u32, report, truncated));
                }
                out
            },
        );

        let seconds = started.elapsed().as_secs_f64();
        let mut merged = SimReport::empty();
        let mut lane_digests: Vec<Option<u64>> = vec![None; lanes];
        let mut health = FleetHealth::default();
        for (shard, result) in shard_results.into_iter().enumerate() {
            match result {
                Ok(lane_reports) => {
                    for (lane, report, truncated) in lane_reports {
                        lane_digests[lane as usize] = Some(report.digest());
                        merge_into(&mut merged, &report);
                        health.ok_lanes += 1;
                        health.truncated_lanes += u32::from(truncated);
                    }
                }
                Err(e) => {
                    let r = &ranges[shard];
                    health.failed.push(ShardFailure {
                        shard: shard as u32,
                        lanes: r.start as u32..r.end as u32,
                        error: e.to_string(),
                    });
                }
            }
        }

        metrics::counter("sim/fleet/lanes_ok").add(u64::from(health.ok_lanes));
        metrics::counter("sim/fleet/lanes_failed").add(u64::from(health.failed_lanes()));
        let report = FleetReport { merged, lane_digests, health, seconds };
        metrics::gauge("sim/fleet/events_per_sec").set(report.events_per_sec());
        report
    }
}

/// Fold `lane` into `acc` (strict-order merge: counters add, Welfords
/// combine via Chan's formula, censuses add element-wise).
fn merge_into(acc: &mut SimReport, lane: &SimReport) {
    acc.completed += lane.completed;
    acc.lost += lane.lost;
    acc.blocked_attempts += lane.blocked_attempts;
    acc.attempts += lane.attempts;
    acc.retries += lane.retries;
    acc.events += lane.events;
    acc.utility_at_admission.merge(&lane.utility_at_admission);
    acc.utility_time_avg.merge(&lane.utility_time_avg);
    acc.utility_worst.merge(&lane.utility_worst);
    acc.census.merge(&lane.census);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::MixedPoisson;
    use crate::holding::HoldingDist;
    use crate::link::Discipline;
    use bevra_utility::AdaptiveExp;
    use std::sync::Arc;

    fn fleet_cfg(lanes: u32) -> FleetConfig {
        FleetConfig {
            base: SimConfig {
                capacity: 25.0,
                discipline: Discipline::BestEffort,
                arrivals: MixedPoisson::fixed(20.0),
                holding: HoldingDist::Exponential { mean: 1.0 },
                utility: Arc::new(AdaptiveExp::paper()),
                warmup: 20.0,
                horizon: 300.0,
                seed: 7,
                max_events: None,
            },
            lanes,
        }
    }

    #[test]
    fn digest_invariant_across_shard_counts() {
        let fleet = Fleet::new(fleet_cfg(10));
        let reference = fleet.run_on(1, QueueKind::Wheel);
        assert!(reference.health.all_ok());
        assert_eq!(reference.health.ok_lanes, 10);
        for shards in [2, 3, 7, 10, 64] {
            let r = fleet.run_on(shards, QueueKind::Wheel);
            assert_eq!(
                r.merged.digest(),
                reference.merged.digest(),
                "digest drifted at {shards} shards"
            );
            assert_eq!(r.lane_digests, reference.lane_digests);
        }
        // Queue choice is invisible too.
        let heap = fleet.run_on(3, QueueKind::Heap);
        assert_eq!(heap.merged.digest(), reference.merged.digest());
    }

    #[test]
    fn single_lane_merge_is_identity() {
        let fleet = Fleet::new(fleet_cfg(1));
        let r = fleet.run_on(1, QueueKind::Wheel);
        let solo = Simulation::new(fleet.lane_config(0)).run();
        assert_eq!(r.merged.digest(), solo.digest());
        assert_eq!(r.merged.events, solo.events);
    }

    #[test]
    fn merged_counters_equal_lane_sums() {
        let fleet = Fleet::new(fleet_cfg(4));
        let r = fleet.run_on(2, QueueKind::Wheel);
        let mut completed = 0;
        let mut events = 0;
        let mut utility_n = 0;
        for lane in 0..4 {
            let solo = Simulation::new(fleet.lane_config(lane)).run();
            completed += solo.completed;
            events += solo.events;
            utility_n += solo.utility_time_avg.count();
        }
        assert_eq!(r.merged.completed, completed);
        assert_eq!(r.merged.events, events);
        assert_eq!(r.merged.utility_time_avg.count(), utility_n);
        assert!(r.seconds > 0.0);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn lanes_decorrelate_via_derived_seeds() {
        let fleet = Fleet::new(fleet_cfg(3));
        let r = fleet.run_on(1, QueueKind::Wheel);
        let digests: Vec<_> = r.lane_digests.iter().flatten().copied().collect();
        assert_eq!(digests.len(), 3);
        assert!(digests.windows(2).all(|w| w[0] != w[1]), "lane seeds must differ");
    }

    #[test]
    fn lane_budget_truncation_is_accounted_not_fatal() {
        let mut cfg = fleet_cfg(3);
        cfg.base.max_events = Some(2_000);
        let r = Fleet::new(cfg).run_on(2, QueueKind::Wheel);
        assert!(r.health.all_ok(), "budget exhaustion is not a shard failure");
        assert_eq!(r.health.ok_lanes, 3);
        assert_eq!(r.health.truncated_lanes, 3);
        assert_eq!(r.merged.events, 6_000, "each lane stops at exactly its budget");
    }
}
