//! Sharded multi-lane simulation — the ≥10M-flow execution layer.
//!
//! A *fleet* runs `lanes` independent virtual event loops of one base
//! configuration, each lane seeded by
//! [`rand::derive_seed`]`(base.seed, lane)`, and merges their
//! reports into a single pooled [`SimReport`]. Lanes are the **semantic**
//! unit: the fleet's result is defined as "lane 0's report merged with
//! lane 1's, merged with lane 2's, …" — a fold in strict lane order.
//!
//! *Shards* are the **execution** unit: `BEVRA_SIM_SHARDS` (default: the
//! worker-thread count) groups lanes into contiguous chunks via
//! [`bevra_engine::chunk_ranges`], and each shard runs its lanes serially
//! on one pool worker. Because the chunking is contiguous and lane slots
//! are merged in index order, the result is bitwise-invariant under
//! `BEVRA_SIM_SHARDS` and `BEVRA_THREADS` (pinned by
//! `tests/determinism.rs` and `tests/sim_scale.rs`).
//!
//! # Failure recovery
//!
//! Each shard runs under the engine pool's panic isolation and passes
//! through the `panic:sim/shard` fault site keyed by shard index; each
//! lane additionally crosses `panic:sim/lane` (keyed by lane, attempt 0)
//! so chaos plans can kill a single lane. A panicked shard no longer
//! condemns its lanes outright: after the parallel phase, a serial
//! [`Supervisor`] re-runs each missing lane individually — in strict lane
//! order, from the lane's derived seed, re-crossing `sim/lane` with an
//! incremented attempt index — under the ambient
//! [`RetryPolicy`] (`BEVRA_RETRY`, default one immediate retry). A
//! transient fault (`n=`-bounded rule) is thereby *rescued*: the restarted
//! lane reproduces its exact bits and the merged digest equals the
//! fault-free run's, with the restart recorded in
//! [`FleetHealth::restarts`]. Persistent faults exhaust the policy, trip
//! the supervisor's [`CircuitBreaker`]
//! ([`FleetHealth::breaker_trips`]), and remaining dead lanes are
//! rejected fast, each recorded as a single-lane [`ShardFailure`].
//! Because recovery is serial and seeded, rescued runs replay
//! identically. Budget exhaustion inside a lane (the `sim/budget`
//! watchdog) and cooperative deadline expiry are *not* failures: the
//! lane's partial report merges and the lane is counted in
//! [`FleetHealth::truncated_lanes`].
//!
//! # Checkpoint/resume
//!
//! With `BEVRA_CHECKPOINT=rw` (see [`crate::ckpt`]) the fleet persists
//! completed clean lanes after every [`GROUP_SHARDS`] shards, crossing
//! the `panic:sim/fleet-ckpt` kill site between groups, and restores them
//! bitwise on the next run — a killed ≥10M-flow fleet resumes instead of
//! starting over, and the resumed merged digest is identical to an
//! uninterrupted run's.

use crate::ckpt::{FleetCheckpoint, GROUP_SHARDS};
use crate::runner::{QueueKind, SimConfig, SimError, SimReport, Simulation};
use bevra_obs::metrics;
use bevra_resilience::{ambient_clock, CircuitBreaker, Deadline, RetryPolicy, Supervisor};
use rand::derive_seed;

/// Environment variable setting how many shards (contiguous lane chunks)
/// a fleet run is split into. Purely an execution knob: any value yields
/// the identical merged report. Defaults to the engine worker count.
pub const SHARDS_ENV: &str = "BEVRA_SIM_SHARDS";

/// Upper bound on an explicitly requested shard count (mirrors the
/// engine's [`MAX_THREADS`](bevra_engine::MAX_THREADS) policy).
pub const MAX_SHARDS: usize = 512;

/// Consecutive dead lanes that trip the recovery breaker.
const BREAKER_THRESHOLD: u32 = 3;

/// Rejected lanes between half-open probes once the breaker is open.
const BREAKER_PROBE_AFTER: u32 = 4;

/// Number of shards a fleet run will use: `BEVRA_SIM_SHARDS` if it parses
/// as an integer in `1..=`[`MAX_SHARDS`], else the engine worker count.
#[must_use]
pub fn shard_count() -> usize {
    bevra_num::env::env_count(SHARDS_ENV, MAX_SHARDS, bevra_engine::thread_count())
}

/// Configuration of a fleet run: one base [`SimConfig`] replicated across
/// independently-seeded lanes.
#[derive(Clone)]
pub struct FleetConfig {
    /// Per-lane simulation parameters. `base.seed` is the fleet's master
    /// seed; lane `i` runs with `derive_seed(base.seed, i)`.
    pub base: SimConfig,
    /// Number of independent virtual event loops. Fixed per config —
    /// changing it changes the result; changing shards/threads does not.
    pub lanes: u32,
}

/// One failed recovery unit, for the health ledger.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard index (into the run's contiguous lane chunking) the lanes
    /// belonged to.
    pub shard: u32,
    /// Lanes that produced no report. Since per-lane recovery, each entry
    /// covers the single lane that stayed dead (or was rejected by the
    /// open breaker) after supervision.
    pub lanes: std::ops::Range<u32>,
    /// The failure, rendered as text (panic payload, or the breaker's
    /// rejection).
    pub error: String,
}

/// `SweepHealth`-style accounting of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    /// Lanes whose reports merged into the pooled result.
    pub ok_lanes: u32,
    /// Of the ok lanes, how many were truncated by the `sim/budget`
    /// watchdog or the cooperative deadline (their partial reports still
    /// merged).
    pub truncated_lanes: u32,
    /// Lane re-executions performed by the recovery supervisor (every
    /// restart attempt of a panicked lane counts one, successful or not).
    pub restarts: u64,
    /// Times the recovery breaker tripped open on persistent lane death.
    pub breaker_trips: u64,
    /// Lanes that stayed dead after supervision (one entry per lane).
    pub failed: Vec<ShardFailure>,
}

impl FleetHealth {
    /// True when every lane merged.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }

    /// Lanes lost to failed shards.
    #[must_use]
    pub fn failed_lanes(&self) -> u32 {
        self.failed.iter().map(|f| f.lanes.end - f.lanes.start).sum()
    }
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// All surviving lanes' reports, folded in strict lane order.
    /// `merged.digest()` is the fleet's canonical digest — invariant
    /// under `BEVRA_SIM_SHARDS`, `BEVRA_THREADS`, and `BEVRA_SIM_QUEUE`.
    pub merged: SimReport,
    /// Per-lane digests (`None` for lanes that stayed dead) — the
    /// accounting granularity the chaos suite checks.
    pub lane_digests: Vec<Option<u64>>,
    /// Failure/truncation/recovery accounting.
    pub health: FleetHealth,
    /// Wall-clock seconds the fleet spent executing shards.
    pub seconds: f64,
}

impl FleetReport {
    /// Events per wall-clock second across all surviving lanes — the
    /// headline throughput figure (also exported as the
    /// `sim/fleet/events_per_sec` gauge).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.merged.events as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A fleet instance. Create with [`Fleet::new`], run with [`Fleet::run`].
pub struct Fleet {
    cfg: FleetConfig,
    ckpt: Option<FleetCheckpoint>,
    restarts_enabled: bool,
}

impl Fleet {
    /// New fleet from a config, with the ambient checkpoint store
    /// (`BEVRA_CHECKPOINT`) if one is configured.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0` or the base config is invalid (see
    /// [`Simulation::new`]).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.lanes > 0, "a fleet needs at least one lane");
        assert!(cfg.base.capacity > 0.0, "capacity must be positive");
        assert!(cfg.base.horizon > 0.0, "horizon must be positive");
        Self { cfg, ckpt: FleetCheckpoint::from_env("bevra-sim"), restarts_enabled: true }
    }

    /// Replace the checkpoint store (builder style) — tests and embedders
    /// inject explicit stores without touching the environment.
    #[must_use]
    pub fn with_checkpoint(mut self, store: FleetCheckpoint) -> Self {
        self.ckpt = Some(store);
        self
    }

    /// Disable lane-restart recovery (builder style): panicked lanes stay
    /// dead. Exists for the mutation test that proves a dropped restart
    /// is caught by the digest pin — production code never calls this.
    #[must_use]
    pub fn without_restarts(mut self) -> Self {
        self.restarts_enabled = false;
        self
    }

    /// The active checkpoint store, if any.
    #[must_use]
    pub fn checkpoint_store(&self) -> Option<&FleetCheckpoint> {
        self.ckpt.as_ref()
    }

    /// Content-hash key of this fleet's results: the base config's
    /// [`SimConfig::fingerprint`] folded with the lane count. Checkpoint
    /// entries are stored under this key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.cfg.base.fingerprint();
        crate::stats::fnv_fold(&mut h, u64::from(self.cfg.lanes));
        h
    }

    /// The [`SimConfig`] lane `lane` runs: the base with its derived seed.
    #[must_use]
    pub fn lane_config(&self, lane: u32) -> SimConfig {
        let mut cfg = self.cfg.base.clone();
        cfg.seed = derive_seed(self.cfg.base.seed, u64::from(lane));
        cfg
    }

    /// Run the fleet at the ambient shard count ([`shard_count`]) and
    /// queue kind (`BEVRA_SIM_QUEUE`).
    #[must_use]
    pub fn run(&self) -> FleetReport {
        self.run_on(shard_count(), QueueKind::from_env())
    }

    /// Run the fleet with an explicit shard count and queue kind — the
    /// determinism suite calls this with several shard counts and asserts
    /// one digest.
    #[allow(clippy::too_many_lines)]
    #[must_use]
    pub fn run_on(&self, shards: usize, queue: QueueKind) -> FleetReport {
        let lanes = self.cfg.lanes as usize;
        let mut sp = bevra_obs::span("sim/fleet");
        sp.add_points(lanes as u64);
        let ranges = bevra_engine::chunk_ranges(lanes, shards.max(1));
        let started = std::time::Instant::now();
        // One cooperative deadline shared by every lane: the whole fleet
        // gets a single `BEVRA_DEADLINE_MS` budget, not one per lane.
        let deadline = Deadline::from_env("bevra-sim");
        let mut health = FleetHealth::default();

        // Per-lane result slots, filled by checkpoint restore, the
        // parallel shard phase, and the recovery loop — then merged in
        // strict lane order, which is what keeps the digest invariant
        // under any shard/thread count and any restore/recovery mix.
        let mut slots: Vec<Option<(SimReport, bool)>> = (0..lanes).map(|_| None).collect();
        let key = self.fingerprint();
        let mut restored = vec![false; lanes];
        if let Some(cs) = &self.ckpt {
            for (lane, report) in cs.load(key, lanes).into_iter().enumerate() {
                if let Some(r) = report {
                    slots[lane] = Some((r, false));
                    restored[lane] = true;
                }
            }
        }

        // One simulated lane, shared by the shard phase (attempt 0) and
        // the recovery loop (attempt ≥ 1). Budget/deadline truncation is
        // degradation, not failure.
        let run_lane = |lane: usize, attempt: u64| -> (SimReport, bool) {
            bevra_faults::panic_point_attempt("sim/lane", lane as u64, attempt);
            let sim = Simulation::new(self.lane_config(lane as u32));
            match sim.run_checked_deadline_on(queue, deadline) {
                Ok(r) => (r, false),
                Err(
                    SimError::BudgetExhausted { partial, .. }
                    | SimError::DeadlineExpired { partial, .. },
                ) => (*partial, true),
            }
        };

        // Parallel phase: one pool item per shard, each running its
        // not-yet-restored lanes serially. No pool-level retry — recovery
        // is the serial supervisor's job, so a panicked shard costs at
        // most one wasted partial pass.
        let todo: Vec<(usize, std::ops::Range<usize>)> = ranges
            .iter()
            .cloned()
            .enumerate()
            .filter(|(_, r)| r.clone().any(|lane| !restored[lane]))
            .collect();
        let single_attempt = RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            total_budget_ms: 0,
            seed: 0,
        };
        let mut failed_shards: Vec<(usize, String)> = Vec::new();
        let group = if self.ckpt.is_some() { GROUP_SHARDS } else { todo.len().max(1) };
        for (group_idx, chunk) in todo.chunks(group).enumerate() {
            let (results, _) = bevra_engine::parallel_map_supervised(
                chunk,
                bevra_engine::thread_count().min(chunk.len()),
                &single_attempt,
                |item: &(usize, std::ops::Range<usize>), _attempt| {
                    let (shard, range) = item;
                    bevra_faults::panic_point("sim/shard", *shard as u64);
                    let mut sh = bevra_obs::span("sim/fleet/shard");
                    sh.add_points(range.len() as u64);
                    let mut out = Vec::with_capacity(range.len());
                    for lane in range.clone() {
                        if restored[lane] {
                            continue;
                        }
                        let (report, truncated) = run_lane(lane, 0);
                        out.push((lane, report, truncated));
                    }
                    out
                },
            );
            for ((shard, _), result) in chunk.iter().zip(results) {
                match result {
                    Ok(lane_reports) => {
                        for (lane, report, truncated) in lane_reports {
                            slots[lane] = Some((report, truncated));
                        }
                    }
                    Err(e) => failed_shards.push((*shard, e.to_string())),
                }
            }
            if let Some(cs) = &self.ckpt {
                cs.store(key, lanes, &clean_lanes(&slots));
                bevra_faults::panic_point("sim/fleet-ckpt", group_idx as u64);
            }
        }

        // Recovery: re-run each missing lane individually, serially, in
        // lane order, under the ambient retry policy and a breaker that
        // fails fast on persistent death. Serial + seeded = the rescue
        // replays identically regardless of shard/thread counts.
        if !failed_shards.is_empty() && self.restarts_enabled {
            let policy = RetryPolicy::from_env("bevra-sim", RetryPolicy::compute());
            let mut sup = Supervisor::new(
                policy,
                CircuitBreaker::new(BREAKER_THRESHOLD, BREAKER_PROBE_AFTER),
            );
            let mut clock = ambient_clock();
            for (shard, shard_error) in &failed_shards {
                for lane in ranges[*shard].clone() {
                    if slots[lane].is_some() {
                        continue;
                    }
                    let mut last_error = shard_error.clone();
                    let rejected_before = sup.stats().rejected;
                    let got = sup.run_unit(&mut *clock, |attempt| {
                        health.restarts += 1;
                        // Attempt 0 was the lane's pass inside the
                        // panicked shard; recovery re-crosses the fault
                        // site from attempt 1, so `n`-bounded (transient)
                        // rules stop firing and the lane reproduces its
                        // exact bits from the derived seed.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_lane(lane, u64::from(attempt) + 1)
                        })) {
                            Ok(r) => Ok(r),
                            Err(payload) => {
                                last_error = panic_message(payload.as_ref());
                                Err(last_error.clone())
                            }
                        }
                    });
                    match got {
                        Some((report, truncated)) => slots[lane] = Some((report, truncated)),
                        None => {
                            let error = if sup.stats().rejected > rejected_before {
                                format!(
                                    "lane {lane} not restarted: breaker open after repeated lane death"
                                )
                            } else {
                                format!("lane {lane} dead after restarts: {last_error}")
                            };
                            health.failed.push(ShardFailure {
                                shard: *shard as u32,
                                lanes: lane as u32..lane as u32 + 1,
                                error,
                            });
                        }
                    }
                }
            }
            health.breaker_trips = sup.breaker_trips();
            if let Some(cs) = &self.ckpt {
                cs.store(key, lanes, &clean_lanes(&slots));
            }
        } else if !failed_shards.is_empty() {
            // Restarts disabled (mutation-test knob): dead shards stay
            // dead, one failure entry per shard as before.
            for (shard, error) in &failed_shards {
                let r = &ranges[*shard];
                health.failed.push(ShardFailure {
                    shard: *shard as u32,
                    lanes: r.start as u32..r.end as u32,
                    error: error.clone(),
                });
            }
        }

        // Merge in strict lane order.
        let seconds = started.elapsed().as_secs_f64();
        let mut merged = SimReport::empty();
        let mut lane_digests: Vec<Option<u64>> = vec![None; lanes];
        for (lane, slot) in slots.iter().enumerate() {
            if let Some((report, truncated)) = slot {
                lane_digests[lane] = Some(report.digest());
                merge_into(&mut merged, report);
                health.ok_lanes += 1;
                health.truncated_lanes += u32::from(*truncated);
            }
        }
        if let Some(cs) = &self.ckpt {
            if health.failed.is_empty() && health.truncated_lanes == 0 {
                cs.clear(key);
            }
        }

        metrics::counter("sim/fleet/lanes_ok").add(u64::from(health.ok_lanes));
        metrics::counter("sim/fleet/lanes_failed").add(u64::from(health.failed_lanes()));
        metrics::counter("sim/fleet/lane_restarts").add(health.restarts);
        metrics::counter("sim/fleet/breaker_trips").add(health.breaker_trips);
        let report = FleetReport { merged, lane_digests, health, seconds };
        metrics::gauge("sim/fleet/events_per_sec").set(report.events_per_sec());
        report
    }
}

/// The clean (untruncated) completed lanes, ready to checkpoint.
fn clean_lanes(slots: &[Option<(SimReport, bool)>]) -> Vec<(usize, &SimReport)> {
    slots
        .iter()
        .enumerate()
        .filter_map(|(lane, slot)| match slot {
            Some((report, false)) => Some((lane, report)),
            _ => None,
        })
        .collect()
}

/// Render a panic payload as text (the pool's convention).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Fold `lane` into `acc` (strict-order merge: counters add, Welfords
/// combine via Chan's formula, censuses add element-wise).
fn merge_into(acc: &mut SimReport, lane: &SimReport) {
    acc.completed += lane.completed;
    acc.lost += lane.lost;
    acc.blocked_attempts += lane.blocked_attempts;
    acc.attempts += lane.attempts;
    acc.retries += lane.retries;
    acc.events += lane.events;
    acc.utility_at_admission.merge(&lane.utility_at_admission);
    acc.utility_time_avg.merge(&lane.utility_time_avg);
    acc.utility_worst.merge(&lane.utility_worst);
    acc.census.merge(&lane.census);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::MixedPoisson;
    use crate::holding::HoldingDist;
    use crate::link::Discipline;
    use bevra_engine::CacheMode;
    use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
    use bevra_utility::AdaptiveExp;
    use std::sync::Arc;

    fn fleet_cfg(lanes: u32) -> FleetConfig {
        FleetConfig {
            base: SimConfig {
                capacity: 25.0,
                discipline: Discipline::BestEffort,
                arrivals: MixedPoisson::fixed(20.0),
                holding: HoldingDist::Exponential { mean: 1.0 },
                utility: Arc::new(AdaptiveExp::paper()),
                warmup: 20.0,
                horizon: 300.0,
                seed: 7,
                max_events: None,
            },
            lanes,
        }
    }

    /// Suppress the default panic-hook noise for injected panics only
    /// (they are expected and caught); everything else still prints.
    fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("bevra-faults: injected panic"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn digest_invariant_across_shard_counts() {
        let fleet = Fleet::new(fleet_cfg(10));
        let reference = fleet.run_on(1, QueueKind::Wheel);
        assert!(reference.health.all_ok());
        assert_eq!(reference.health.ok_lanes, 10);
        for shards in [2, 3, 7, 10, 64] {
            let r = fleet.run_on(shards, QueueKind::Wheel);
            assert_eq!(
                r.merged.digest(),
                reference.merged.digest(),
                "digest drifted at {shards} shards"
            );
            assert_eq!(r.lane_digests, reference.lane_digests);
        }
        // Queue choice is invisible too.
        let heap = fleet.run_on(3, QueueKind::Heap);
        assert_eq!(heap.merged.digest(), reference.merged.digest());
    }

    #[test]
    fn single_lane_merge_is_identity() {
        let fleet = Fleet::new(fleet_cfg(1));
        let r = fleet.run_on(1, QueueKind::Wheel);
        let solo = Simulation::new(fleet.lane_config(0)).run();
        assert_eq!(r.merged.digest(), solo.digest());
        assert_eq!(r.merged.events, solo.events);
    }

    #[test]
    fn merged_counters_equal_lane_sums() {
        let fleet = Fleet::new(fleet_cfg(4));
        let r = fleet.run_on(2, QueueKind::Wheel);
        let mut completed = 0;
        let mut events = 0;
        let mut utility_n = 0;
        for lane in 0..4 {
            let solo = Simulation::new(fleet.lane_config(lane)).run();
            completed += solo.completed;
            events += solo.events;
            utility_n += solo.utility_time_avg.count();
        }
        assert_eq!(r.merged.completed, completed);
        assert_eq!(r.merged.events, events);
        assert_eq!(r.merged.utility_time_avg.count(), utility_n);
        assert!(r.seconds > 0.0);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn lanes_decorrelate_via_derived_seeds() {
        let fleet = Fleet::new(fleet_cfg(3));
        let r = fleet.run_on(1, QueueKind::Wheel);
        let digests: Vec<_> = r.lane_digests.iter().flatten().copied().collect();
        assert_eq!(digests.len(), 3);
        assert!(digests.windows(2).all(|w| w[0] != w[1]), "lane seeds must differ");
    }

    #[test]
    fn lane_budget_truncation_is_accounted_not_fatal() {
        let mut cfg = fleet_cfg(3);
        cfg.base.max_events = Some(2_000);
        let r = Fleet::new(cfg).run_on(2, QueueKind::Wheel);
        assert!(r.health.all_ok(), "budget exhaustion is not a shard failure");
        assert_eq!(r.health.ok_lanes, 3);
        assert_eq!(r.health.truncated_lanes, 3);
        assert_eq!(r.merged.events, 6_000, "each lane stops at exactly its budget");
    }

    #[test]
    fn transient_lane_panic_is_restarted_to_identical_bits() {
        silence_injected_panics();
        let fleet = Fleet::new(fleet_cfg(6));
        let reference = fleet.run_on(3, QueueKind::Wheel);
        // Lane 2 panics on its first attempt only; the supervisor's
        // restart reproduces it from the derived seed.
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 2).with_n(1));
        let r = {
            let _guard = install(plan);
            fleet.run_on(3, QueueKind::Wheel)
        };
        assert!(r.health.all_ok(), "transient fault must be rescued: {:?}", r.health.failed);
        assert_eq!(r.health.ok_lanes, 6);
        // The dead shard covered lanes 2 and 3; both re-execute once.
        assert_eq!(r.health.restarts, 2, "both lanes of the dead shard re-execute");
        assert_eq!(r.health.breaker_trips, 0);
        assert_eq!(
            r.merged.digest(),
            reference.merged.digest(),
            "rescued run must be bitwise-identical to the fault-free run"
        );
        assert_eq!(r.lane_digests, reference.lane_digests);
    }

    #[test]
    fn permanent_shard_panic_is_rescued_lane_by_lane() {
        silence_injected_panics();
        let fleet = Fleet::new(fleet_cfg(6));
        let reference = fleet.run_on(3, QueueKind::Wheel);
        // The shard site is only crossed by whole shards — individual
        // lane re-runs bypass it, so even a *permanent* shard fault is
        // fully rescued by per-lane recovery.
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::always(FaultKind::Panic, "sim/shard"));
        let r = {
            let _guard = install(plan);
            fleet.run_on(3, QueueKind::Wheel)
        };
        assert!(r.health.all_ok(), "per-lane recovery bypasses the shard site");
        assert_eq!(r.health.restarts, 6, "every lane re-executed once");
        assert_eq!(r.merged.digest(), reference.merged.digest());
    }

    #[test]
    fn permanent_lane_death_trips_the_breaker_and_isolates() {
        silence_injected_panics();
        let fleet = Fleet::new(fleet_cfg(8));
        let reference = fleet.run_on(1, QueueKind::Wheel);
        // Every lane dies permanently: the first BREAKER_THRESHOLD lanes
        // burn their restart budget, then the breaker opens and most of
        // the rest are rejected without wasted attempts.
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::always(FaultKind::Panic, "sim/lane"));
        let r = {
            let _guard = install(plan);
            fleet.run_on(2, QueueKind::Wheel)
        };
        assert_eq!(r.health.ok_lanes, 0);
        assert_eq!(r.health.failed_lanes(), 8);
        assert_eq!(r.health.failed.len(), 8, "one failure entry per dead lane");
        assert!(r.health.breaker_trips >= 1, "persistent death must trip the breaker");
        assert!(
            r.health.restarts < 16,
            "the open breaker must fail fast, not burn the full budget on every lane: {}",
            r.health.restarts
        );
        assert!(r.health.failed.iter().any(|f| f.error.contains("breaker open")));
        drop(reference);
    }

    #[test]
    fn single_dead_lane_leaves_other_lanes_bitwise_intact() {
        silence_injected_panics();
        let fleet = Fleet::new(fleet_cfg(6));
        let reference = fleet.run_on(3, QueueKind::Wheel);
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 4));
        let r = {
            let _guard = install(plan);
            fleet.run_on(3, QueueKind::Wheel)
        };
        assert_eq!(r.health.failed_lanes(), 1);
        assert_eq!(r.health.ok_lanes, 5);
        for lane in [0usize, 1, 2, 3, 5] {
            assert_eq!(
                r.lane_digests[lane], reference.lane_digests[lane],
                "surviving lane {lane} must be unchanged"
            );
        }
        assert_eq!(r.lane_digests[4], None);
    }

    #[test]
    fn dropped_restart_is_caught_by_the_digest() {
        silence_injected_panics();
        let fleet = Fleet::new(fleet_cfg(6));
        let reference = fleet.run_on(3, QueueKind::Wheel);
        // Mutation test: with restarts disabled, the same transient fault
        // that recovery would rescue instead changes the merged digest —
        // i.e. the digest pin *does* catch a silently dropped restart.
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 2).with_n(1));
        let crippled = Fleet::new(fleet_cfg(6)).without_restarts();
        let r = {
            let _guard = install(plan);
            crippled.run_on(3, QueueKind::Wheel)
        };
        assert!(!r.health.all_ok(), "without restarts the shard stays dead");
        assert_eq!(r.health.restarts, 0);
        assert_ne!(
            r.merged.digest(),
            reference.merged.digest(),
            "a dropped restart must be visible in the digest"
        );
        drop(fleet);
    }

    fn tmp_store(tag: &str) -> FleetCheckpoint {
        let d =
            std::env::temp_dir().join(format!("bevra-fleet-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        FleetCheckpoint::new(d, CacheMode::ReadWrite)
    }

    #[test]
    fn killed_fleet_resumes_bitwise_from_checkpoint() {
        silence_injected_panics();
        let reference = Fleet::new(fleet_cfg(8)).run_on(8, QueueKind::Wheel);

        // 8 shards in groups of GROUP_SHARDS = 2 groups; kill after the
        // first group's checkpoint is stored.
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "sim/fleet-ckpt", 0));
        let store = tmp_store("kill");
        let dir = store.dir().to_path_buf();
        let interrupted = {
            let _guard = install(plan);
            let fleet = Fleet::new(fleet_cfg(8)).with_checkpoint(store);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fleet.run_on(8, QueueKind::Wheel)
            }))
        };
        assert!(interrupted.is_err(), "the kill site must abort the run");

        // Resume with a fresh store over the same directory: the first
        // group's lanes restore from disk, the rest are simulated.
        let resume_store = FleetCheckpoint::new(dir, CacheMode::ReadWrite);
        let fleet = Fleet::new(fleet_cfg(8)).with_checkpoint(resume_store);
        let resumed = fleet.run_on(8, QueueKind::Wheel);
        let cs = fleet.checkpoint_store().expect("store attached");
        assert!(cs.restored_lanes() > 0, "resume must restore checkpointed lanes");
        assert!(resumed.health.all_ok());
        assert_eq!(
            resumed.merged.digest(),
            reference.merged.digest(),
            "resumed fleet must be bitwise-identical to an uninterrupted run"
        );
        assert_eq!(resumed.lane_digests, reference.lane_digests);
        assert!(
            cs.load(fleet.fingerprint(), 8).iter().all(Option::is_none),
            "a fully clean fleet clears its checkpoint"
        );
    }
}
