//! The pre-refactor event loop, preserved as a differential oracle.
//!
//! This is the original `runner.rs` implementation — `BinaryHeapQueue`
//! pending set, array-of-structs `FlowSlot` storage, and the `O(active)`
//! per-admission `max_pop` scan — kept bit-for-bit so the rearchitected
//! loop ([`Simulation::run_checked`](crate::runner::Simulation::run_checked))
//! can be proven equivalent rather than trusted: `tests/sim_scale.rs`
//! asserts `SimReport::digest` parity between this oracle and the
//! SoA/timer-wheel loop across the pinned corpus, and the scale bench
//! measures the speedup against it honestly.
//!
//! Differences from the production loop, all observational:
//! no metrics/span recording (so differential runs don't double-count
//! obs counters), and no choice of queue (always the heap). Everything
//! that feeds the digest — RNG call order, arithmetic, census clipping,
//! the budget watchdog — is untouched.

use crate::events::{Entry, EventKind};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::runner::{SimConfig, SimError, SimReport};
use crate::Census;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct FlowSlot {
    admit_time: f64,
    integral_at_admit: f64,
    max_pop: u64,
    retries: u32,
    util_at_admission: f64,
    /// Position in the active list (for O(1) swap-removal).
    active_pos: usize,
}

/// Run `cfg` on the legacy loop, degrading to the partial report on
/// budget exhaustion (mirror of `Simulation::run`).
#[must_use]
pub fn run(cfg: &SimConfig) -> SimReport {
    match run_checked(cfg) {
        Ok(report) => report,
        Err(
            SimError::BudgetExhausted { partial, .. }
            | SimError::DeadlineExpired { partial, .. },
        ) => *partial,
    }
}

/// Run `cfg` on the legacy loop (mirror of `Simulation::run_checked`).
///
/// # Errors
///
/// [`SimError::BudgetExhausted`] when the watchdog fires.
///
/// # Panics
///
/// Panics on nonpositive capacity or horizon, like `Simulation::new`.
#[allow(clippy::too_many_lines)]
pub fn run_checked(cfg: &SimConfig) -> Result<SimReport, SimError> {
    assert!(cfg.capacity > 0.0, "capacity must be positive");
    assert!(cfg.horizon > 0.0, "horizon must be positive");
    assert!(cfg.warmup >= 0.0, "warmup must be nonnegative");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = cfg.arrivals.clone();
    let mut queue = BinaryHeapQueue::new();
    let mut seq: u64 = 0;
    let end = cfg.warmup + cfg.horizon;

    // Flow storage: slab + free list + active index list.
    let mut slots: Vec<FlowSlot> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut active: Vec<u32> = Vec::new();

    // Running state.
    let mut t = 0.0f64;
    let mut n: u64 = 0; // current population
    let mut integral = 0.0f64; // ∫ π(C/n(s)) ds (0 when n = 0)
    let mut census = Census::new();
    // Sequence number of the one live pending Arrival event: a modulation
    // switch replaces it, and the superseded event (still in the queue) is
    // discarded when popped.
    let mut live_arrival_seq: u64;
    // Load estimate for measurement-based admission (EWMA over the
    // population seen at arrival instants).
    let mut load_estimate = 0.0f64;

    let mut report = SimReport::empty();

    let push = |q: &mut BinaryHeapQueue, time: f64, kind: EventKind, seq: &mut u64| {
        q.push(Entry { time, seq: *seq, kind });
        *seq += 1;
    };

    // Seed the initial arrival and (if modulated) the first switch.
    arrivals.switch(&mut rng);
    live_arrival_seq = seq;
    push(&mut queue, arrivals.next_interarrival(&mut rng), EventKind::Arrival, &mut seq);
    let first_sojourn = arrivals.next_sojourn(&mut rng);
    if first_sojourn.is_finite() {
        push(&mut queue, first_sojourn, EventKind::ModulationSwitch, &mut seq);
    }

    let pi = |pop: u64| -> f64 {
        if pop == 0 {
            0.0
        } else {
            cfg.utility.value(cfg.capacity / pop as f64)
        }
    };

    // Watchdog: the injected override (chaos runs) takes precedence over
    // the configured ceiling. Checked before each event so a budget of N
    // processes exactly N events.
    let budget = bevra_faults::budget_override("sim/budget").or(cfg.max_events);
    let mut events: u64 = 0;

    while let Some(ev) = queue.pop() {
        if ev.time > end {
            break;
        }
        if budget.is_some_and(|b| events >= b) {
            report.census = census;
            report.events = events;
            return Err(SimError::BudgetExhausted { events, partial: Box::new(report) });
        }
        events += 1;
        // Advance clocks: accumulate the utility integral and the census
        // dwell (clipped to the measured window).
        let dt = ev.time - t;
        if dt > 0.0 {
            integral += pi(n) * dt;
            let meas_lo = t.max(cfg.warmup);
            let meas_hi = ev.time.min(end);
            if meas_hi > meas_lo {
                census.dwell(n, meas_hi - meas_lo);
            }
            t = ev.time;
        }

        match ev.kind {
            EventKind::ModulationSwitch => {
                arrivals.switch(&mut rng);
                // Redraw the pending arrival at the new rate (valid by
                // memorylessness of the exponential); the superseded
                // arrival event is dropped when popped.
                let ia = arrivals.next_interarrival(&mut rng);
                if ia.is_finite() {
                    live_arrival_seq = seq;
                    push(&mut queue, t + ia, EventKind::Arrival, &mut seq);
                }
                let so = arrivals.next_sojourn(&mut rng);
                if so.is_finite() {
                    push(&mut queue, t + so, EventKind::ModulationSwitch, &mut seq);
                }
            }
            EventKind::Arrival => {
                if ev.seq != live_arrival_seq {
                    // Superseded by a modulation switch: skip.
                    continue;
                }
                let measured = t >= cfg.warmup;
                if measured {
                    census.arrival_saw(n);
                }
                if let Some(w) = cfg.discipline.ewma_weight() {
                    load_estimate = (1.0 - w) * load_estimate + w * n as f64;
                }
                handle_admission_attempt(
                    cfg,
                    t,
                    0,
                    None,
                    measured,
                    load_estimate,
                    &mut rng,
                    &mut slots,
                    &mut free,
                    &mut active,
                    &mut n,
                    integral,
                    &mut queue,
                    &mut seq,
                    &mut report,
                );
                // Next arrival of the live stream.
                let ia = arrivals.next_interarrival(&mut rng);
                if ia.is_finite() {
                    live_arrival_seq = seq;
                    push(&mut queue, t + ia, EventKind::Arrival, &mut seq);
                }
            }
            EventKind::Retry { attempt, holding, first_arrival } => {
                let measured = first_arrival >= cfg.warmup;
                report.retries += 1;
                handle_admission_attempt(
                    cfg,
                    t,
                    attempt,
                    Some(holding),
                    measured,
                    load_estimate,
                    &mut rng,
                    &mut slots,
                    &mut free,
                    &mut active,
                    &mut n,
                    integral,
                    &mut queue,
                    &mut seq,
                    &mut report,
                );
            }
            EventKind::Departure { slot } => {
                let s = &slots[slot as usize];
                let duration = t - s.admit_time;
                let penalty = cfg
                    .discipline
                    .retry_policy()
                    .map_or(0.0, |rp| rp.penalty * f64::from(s.retries));
                let measured = s.admit_time >= cfg.warmup && t <= end;
                if measured {
                    let time_avg = if duration > 0.0 {
                        (integral - s.integral_at_admit) / duration
                    } else {
                        s.util_at_admission
                    };
                    report.completed += 1;
                    report.utility_at_admission.add(s.util_at_admission - penalty);
                    report.utility_time_avg.add(time_avg - penalty);
                    report.utility_worst.add(pi(s.max_pop) - penalty);
                }
                // Remove from the active list by swap.
                let pos = s.active_pos;
                let Some(&last) = active.last() else {
                    unreachable!("departure event with empty active list")
                };
                active.swap_remove(pos);
                if pos < active.len() {
                    slots[last as usize].active_pos = pos;
                }
                free.push(slot);
                n -= 1;
            }
        }
    }

    report.census = census;
    report.events = events;
    Ok(report)
}

/// Shared admission logic for fresh arrivals and retries.
#[allow(clippy::too_many_arguments)]
fn handle_admission_attempt(
    cfg: &SimConfig,
    t: f64,
    attempt: u32,
    holding_carryover: Option<f64>,
    measured: bool,
    load_estimate: f64,
    rng: &mut StdRng,
    slots: &mut Vec<FlowSlot>,
    free: &mut Vec<u32>,
    active: &mut Vec<u32>,
    n: &mut u64,
    integral: f64,
    queue: &mut BinaryHeapQueue,
    seq: &mut u64,
    report: &mut SimReport,
) {
    if measured {
        report.attempts += 1;
    }
    if cfg.discipline.admits(*n, load_estimate, cfg.capacity) {
        *n += 1;
        let pop = *n;
        let util = cfg.utility.value(cfg.capacity / pop as f64);
        let holding = holding_carryover.unwrap_or_else(|| cfg.holding.sample(rng));
        let slot_id = free.pop().unwrap_or_else(|| {
            slots.push(FlowSlot {
                admit_time: 0.0,
                integral_at_admit: 0.0,
                max_pop: 0,
                retries: 0,
                util_at_admission: 0.0,
                active_pos: 0,
            });
            (slots.len() - 1) as u32
        });
        let s = &mut slots[slot_id as usize];
        s.admit_time = t;
        s.integral_at_admit = integral;
        s.max_pop = pop;
        s.retries = attempt;
        s.util_at_admission = util;
        s.active_pos = active.len();
        active.push(slot_id);
        // The newcomer raises everyone's worst-case population.
        for &a in active.iter() {
            let m = &mut slots[a as usize].max_pop;
            if pop > *m {
                *m = pop;
            }
        }
        queue.push(Entry {
            time: t + holding,
            seq: *seq,
            kind: EventKind::Departure { slot: slot_id },
        });
        *seq += 1;
    } else {
        if measured {
            report.blocked_attempts += 1;
        }
        match cfg.discipline.retry_policy() {
            Some(rp) if attempt < rp.max_retries => {
                let backoff = bevra_load::ExpSampler::new(1.0 / rp.backoff_mean).sample(rng);
                let holding = holding_carryover.unwrap_or_else(|| cfg.holding.sample(rng));
                queue.push(Entry {
                    time: t + backoff,
                    seq: *seq,
                    kind: EventKind::Retry { attempt: attempt + 1, holding, first_arrival: t },
                });
                *seq += 1;
            }
            _ => {
                // Permanently lost: utility 0 minus accumulated retry
                // penalties.
                if measured {
                    let penalty = cfg
                        .discipline
                        .retry_policy()
                        .map_or(0.0, |rp| rp.penalty * f64::from(attempt));
                    report.lost += 1;
                    report.utility_at_admission.add(-penalty);
                    report.utility_time_avg.add(-penalty);
                    report.utility_worst.add(-penalty);
                }
            }
        }
    }
}
