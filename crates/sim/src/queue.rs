//! Pending-event set implementations.
//!
//! The simulator's hot loop is pop-min/push; the default is a binary heap.
//! A sorted-vec alternative is kept for the event-queue ablation bench
//! (DESIGN.md §4): it wins for tiny event counts and loses badly at scale,
//! and the bench quantifies the crossover.

use crate::events::Entry;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending-event set ordered by (time, seq).
pub trait EventQueue {
    /// Insert an event.
    fn push(&mut self, e: Entry);
    /// Remove and return the earliest event.
    fn pop(&mut self) -> Option<Entry>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap event queue — O(log n) push/pop, the production choice.
#[derive(Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl BinaryHeapQueue {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for BinaryHeapQueue {
    fn push(&mut self, e: Entry) {
        self.heap.push(Reverse(e));
    }

    fn pop(&mut self) -> Option<Entry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Sorted-vector event queue (descending, pop from the back) — O(n) insert,
/// O(1) pop. Ablation baseline only.
#[derive(Default)]
pub struct SortedVecQueue {
    // Kept sorted descending so pop-min is a pop from the back.
    items: Vec<Entry>,
}

impl SortedVecQueue {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for SortedVecQueue {
    fn push(&mut self, e: Entry) {
        let pos = self.items.partition_point(|x| *x > e);
        self.items.insert(pos, e);
    }

    fn pop(&mut self) -> Option<Entry> {
        self.items.pop()
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn entry(t: f64, seq: u64) -> Entry {
        Entry { time: t, seq, kind: EventKind::Arrival }
    }

    fn drain(q: &mut impl EventQueue) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    fn check_time_order(q: &mut impl EventQueue) {
        q.push(entry(3.0, 0));
        q.push(entry(1.0, 1));
        q.push(entry(2.0, 2));
        q.push(entry(1.0, 0));
        assert_eq!(q.len(), 4);
        let order = drain(q);
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (2.0, 2), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn both_queues_pop_in_time_order() {
        check_time_order(&mut BinaryHeapQueue::new());
        check_time_order(&mut SortedVecQueue::new());
    }

    #[test]
    fn queues_agree_on_random_workload() {
        let mut h = BinaryHeapQueue::new();
        let mut v = SortedVecQueue::new();
        // Deterministic pseudo-random times.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for seq in 0..500 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let t = (x >> 11) as f64 / (1u64 << 53) as f64;
            h.push(entry(t, seq));
            v.push(entry(t, seq));
        }
        assert_eq!(drain(&mut h), drain(&mut v));
    }
}
