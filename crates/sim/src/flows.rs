//! Struct-of-arrays flow state for the event loop's hot path.
//!
//! The original runner kept one `FlowSlot` struct per flow and, on every
//! admission, walked the whole active list bumping each flow's
//! `max_pop` — an `O(active)` scan per admission, `O(n²)` over a run,
//! and the true asymptotic bottleneck at large populations (the paper's
//! `k̄ = 10⁵` regime spends >99% of its cycles in that loop). This module
//! replaces both pieces:
//!
//! * [`FlowTable`] stores each per-flow field in its own dense `Vec`
//!   (the same layout trick that made `discrete_batch` 3.2× faster):
//!   a departure touches exactly the cache lines of the fields it reads,
//!   and slot reuse through the free list means a run allocates only up
//!   to its *peak* population, not its flow count.
//! * [`PeakTracker`] answers "what is the largest population any
//!   admission has reached since this flow was admitted?" in `O(log)`
//!   at departure and amortized `O(1)` at admission, via a monotone
//!   suffix-max stack — numerically identical to the old per-flow scan.
//!
//! # Why the tracker is exact
//!
//! Index admissions `0, 1, 2, …` and let `pop(i)` be the population
//! *including* the newcomer at admission `i`. The old code maintained,
//! for each active flow `f` admitted at index `i_f`,
//! `max_pop(f) = max { pop(j) : i_f ≤ j ≤ now }` (its own admission
//! included, later ones folded in by the scan). That is a *suffix
//! maximum* over the admission sequence, queried at the flow's departure.
//! The stack stores pairs `(i, pop(i))` with `pop` strictly decreasing in
//! `i`: a new admission pops every entry with `pop ≤ pop(new)` before
//! pushing itself, which preserves exactly the set of suffix-max
//! candidates. A departed flow's answer is the entry with the smallest
//! index `≥ i_f` (binary search); monotonicity makes it the suffix max.
//! Stack depth is bounded by the peak population (strictly decreasing
//! `pop` values), so memory stays negligible even at millions of flows.

/// Dense struct-of-arrays storage for active flows, indexed by `u32`
/// slot ids that are recycled through a free list.
#[derive(Default)]
pub struct FlowTable {
    admit_time: Vec<f64>,
    integral_at_admit: Vec<f64>,
    util_at_admission: Vec<f64>,
    /// Index of this flow's admission in the global admission sequence —
    /// the key [`PeakTracker::peak_since`] is queried with.
    admit_index: Vec<u64>,
    retries: Vec<u32>,
    /// Position in the `active` list, for O(1) swap-removal.
    active_pos: Vec<u32>,
    free: Vec<u32>,
    active: Vec<u32>,
}

impl FlowTable {
    /// New empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Table with capacity for `n` concurrently-active flows, avoiding
    /// regrowth during the run.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            admit_time: Vec::with_capacity(n),
            integral_at_admit: Vec::with_capacity(n),
            util_at_admission: Vec::with_capacity(n),
            admit_index: Vec::with_capacity(n),
            retries: Vec::with_capacity(n),
            active_pos: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            active: Vec::with_capacity(n),
        }
    }

    /// Number of currently-active flows.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Admit one flow; returns its slot id (stable until departure).
    pub fn admit(
        &mut self,
        admit_time: f64,
        integral_at_admit: f64,
        util_at_admission: f64,
        admit_index: u64,
        retries: u32,
    ) -> u32 {
        let slot = if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.admit_time[i] = admit_time;
            self.integral_at_admit[i] = integral_at_admit;
            self.util_at_admission[i] = util_at_admission;
            self.admit_index[i] = admit_index;
            self.retries[i] = retries;
            self.active_pos[i] = self.active.len() as u32;
            slot
        } else {
            let slot = self.admit_time.len() as u32;
            self.admit_time.push(admit_time);
            self.integral_at_admit.push(integral_at_admit);
            self.util_at_admission.push(util_at_admission);
            self.admit_index.push(admit_index);
            self.retries.push(retries);
            self.active_pos.push(self.active.len() as u32);
            slot
        };
        self.active.push(slot);
        slot
    }

    /// Read the flow's admission-time fields:
    /// `(admit_time, integral_at_admit, util_at_admission, admit_index,
    /// retries)`.
    #[must_use]
    pub fn fields(&self, slot: u32) -> (f64, f64, f64, u64, u32) {
        let i = slot as usize;
        (
            self.admit_time[i],
            self.integral_at_admit[i],
            self.util_at_admission[i],
            self.admit_index[i],
            self.retries[i],
        )
    }

    /// Release a departing flow's slot back to the free list (O(1)
    /// swap-removal from the active list).
    pub fn depart(&mut self, slot: u32) {
        let pos = self.active_pos[slot as usize] as usize;
        debug_assert_eq!(self.active[pos], slot, "active_pos out of sync");
        self.active.swap_remove(pos);
        if let Some(&moved) = self.active.get(pos) {
            self.active_pos[moved as usize] = pos as u32;
        }
        self.free.push(slot);
    }
}

/// Monotone suffix-max stack over the admission sequence (see the
/// [module docs](self) for the equivalence argument).
#[derive(Default)]
pub struct PeakTracker {
    /// `(admission index, population including that admission)`, with
    /// population strictly decreasing as index increases.
    stack: Vec<(u64, u64)>,
    next_index: u64,
}

impl PeakTracker {
    /// New empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an admission that brought the population to `pop`
    /// (newcomer included); returns the admission's index, which the
    /// caller stores in the flow's [`FlowTable`] slot.
    pub fn on_admission(&mut self, pop: u64) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        while self.stack.last().is_some_and(|&(_, p)| p <= pop) {
            self.stack.pop();
        }
        self.stack.push((index, pop));
        index
    }

    /// Largest population reached by any admission with index
    /// `≥ admit_index` — i.e. the departing flow's `max_pop`, its own
    /// admission included.
    #[must_use]
    pub fn peak_since(&self, admit_index: u64) -> u64 {
        // First stack entry with index ≥ admit_index; populations decrease
        // with index, so it is the suffix maximum. The flow's own
        // admission guarantees at least one qualifying entry exists (it
        // was pushed, and can only have been displaced by a later — also
        // qualifying — admission with a population at least as large).
        let at = self.stack.partition_point(|&(i, _)| i < admit_index);
        self.stack.get(at).map_or(0, |&(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_recycles_slots_and_swaps_active() {
        let mut t = FlowTable::new();
        let a = t.admit(1.0, 0.0, 0.5, 0, 0);
        let b = t.admit(2.0, 0.1, 0.6, 1, 0);
        let c = t.admit(3.0, 0.2, 0.7, 2, 1);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(t.active_len(), 3);
        t.depart(a); // c swaps into a's active position
        assert_eq!(t.active_len(), 2);
        let d = t.admit(4.0, 0.3, 0.8, 3, 2);
        assert_eq!(d, a, "freed slot is reused");
        let (at, ia, ua, idx, r) = t.fields(d);
        assert_eq!((at, ia, ua, idx, r), (4.0, 0.3, 0.8, 3, 2));
        // Depart in scrambled order; table stays consistent.
        t.depart(c);
        t.depart(b);
        t.depart(d);
        assert_eq!(t.active_len(), 0);
    }

    /// Differential check against the old O(active) scan on a random
    /// admission/departure schedule.
    #[test]
    fn tracker_matches_naive_scan() {
        let mut x: u64 = 0xDEAD_BEEF_CAFE_1234;
        let mut tracker = PeakTracker::new();
        // Naive model: (admit_index, max_pop) per live flow.
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut pop: u64 = 0;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let admit = pop == 0 || x >> 63 == 0;
            if admit {
                pop += 1;
                for f in &mut live {
                    if pop > f.1 {
                        f.1 = pop;
                    }
                }
                let idx = tracker.on_admission(pop);
                live.push((idx, pop));
            } else {
                let victim = (x >> 32) as usize % live.len();
                let (idx, naive_max) = live.swap_remove(victim);
                pop -= 1;
                assert_eq!(tracker.peak_since(idx), naive_max);
            }
        }
        // Drain the rest.
        for (idx, naive_max) in live {
            assert_eq!(tracker.peak_since(idx), naive_max);
        }
    }

    #[test]
    fn tracker_handles_equal_populations() {
        let mut tr = PeakTracker::new();
        let i0 = tr.on_admission(3); // pop rose to 3
        let i1 = tr.on_admission(3); // dropped to 2, rose back to 3
        assert_eq!(tr.peak_since(i0), 3);
        assert_eq!(tr.peak_since(i1), 3);
        let i2 = tr.on_admission(5);
        assert_eq!(tr.peak_since(i0), 5);
        assert_eq!(tr.peak_since(i2), 5);
        let i3 = tr.on_admission(2);
        assert_eq!(tr.peak_since(i3), 2);
        assert_eq!(tr.peak_since(i0), 5);
    }
}
