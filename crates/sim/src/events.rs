//! Event types and time-ordered event entries.

/// What happens at an event instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A new flow requests service.
    Arrival,
    /// An active flow (by slot id) finishes.
    Departure {
        /// Slot index of the departing flow in the runner's flow table.
        slot: u32,
    },
    /// A previously blocked flow retries admission. `attempt` counts prior
    /// tries (the first retry carries `attempt = 1`).
    Retry {
        /// Number of attempts already made.
        attempt: u32,
        /// Remaining holding time the flow will need if admitted.
        holding: f64,
        /// Original arrival time (for bookkeeping/penalties).
        first_arrival: f64,
    },
    /// The arrival-rate modulation process switches to a new rate.
    ModulationSwitch,
}

/// A scheduled event: time plus a sequence number for deterministic
/// tie-breaking (f64 time alone is not a total order across equal stamps).
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Simulation time of the event.
    pub time: f64,
    /// Monotone sequence number; breaks ties deterministically.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest first when used through the queues in `queue.rs`.
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_time_then_seq() {
        let a = Entry { time: 1.0, seq: 5, kind: EventKind::Arrival };
        let b = Entry { time: 2.0, seq: 1, kind: EventKind::Arrival };
        let c = Entry { time: 1.0, seq: 6, kind: EventKind::Arrival };
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn nan_free_total_order() {
        // total_cmp gives a total order even for exotic floats; equal times
        // fall back to seq.
        let a = Entry { time: 0.0, seq: 0, kind: EventKind::Arrival };
        let b = Entry { time: -0.0, seq: 1, kind: EventKind::Arrival };
        assert!(a != b);
    }
}
