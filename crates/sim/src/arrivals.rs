//! Arrival processes: modulated Poisson streams whose stationary occupancy
//! reproduces the paper's three load families.

use bevra_load::{BoundedPareto, ExpSampler};
use rand::rngs::StdRng;


/// How the instantaneous arrival rate is drawn at each modulation epoch.
///
/// With exponential holding times of mean `1/μ`, occupancy conditional on
/// rate `λ` is Poisson(`λ/μ`); mixing over `λ` gives:
///
/// * [`RateMixing::Fixed`] — plain Poisson occupancy (paper's Poisson
///   load);
/// * [`RateMixing::Exponential`] — exponentially-mixed Poisson, i.e. a
///   geometric occupancy (paper's "exponential" load);
/// * [`RateMixing::Pareto`] — Pareto-mixed Poisson: occupancy with a
///   power-law tail of the same exponent (paper's "algebraic" load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateMixing {
    /// Constant rate.
    Fixed,
    /// Rate ~ Exponential with the configured mean.
    Exponential,
    /// Rate ~ `mean-scaled` bounded Pareto with tail exponent `z` and cap
    /// ratio `cap` (relative to the lower support point).
    Pareto {
        /// Tail exponent (matches the target occupancy tail).
        z: f64,
        /// Upper truncation, as a multiple of the Pareto lower bound.
        cap: f64,
    },
}

/// Poisson arrivals whose rate is re-drawn from a mixing distribution at
/// exponentially distributed modulation epochs.
///
/// The modulation sojourn should be long compared to holding times so the
/// occupancy tracks the conditional Poisson equilibrium at each rate — that
/// separation is what makes the mixed-Poisson correspondence sharp.
#[derive(Debug, Clone)]
pub struct MixedPoisson {
    mean_rate: f64,
    mixing: RateMixing,
    sojourn: ExpSampler,
    current_rate: f64,
}

impl MixedPoisson {
    /// New process with long-run mean rate `mean_rate` and modulation
    /// sojourns of mean `sojourn_mean`.
    ///
    /// # Panics
    ///
    /// Panics unless rates and sojourns are positive and finite.
    #[must_use]
    pub fn new(mean_rate: f64, mixing: RateMixing, sojourn_mean: f64) -> Self {
        assert!(mean_rate > 0.0 && mean_rate.is_finite(), "mean rate must be positive");
        assert!(sojourn_mean > 0.0 && sojourn_mean.is_finite(), "sojourn mean must be positive");
        Self {
            mean_rate,
            mixing,
            sojourn: ExpSampler::new(1.0 / sojourn_mean),
            current_rate: mean_rate,
        }
    }

    /// Plain Poisson arrivals (no modulation).
    #[must_use]
    pub fn fixed(rate: f64) -> Self {
        Self::new(rate, RateMixing::Fixed, f64::MAX / 4.0)
    }

    /// The long-run mean arrival rate.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        self.mean_rate
    }

    /// The rate currently in force.
    #[must_use]
    pub fn current_rate(&self) -> f64 {
        self.current_rate
    }

    /// Draw the time until the next arrival at the current rate.
    pub fn next_interarrival(&self, rng: &mut StdRng) -> f64 {
        if self.current_rate <= 0.0 {
            return f64::INFINITY;
        }
        ExpSampler::new(self.current_rate).sample(rng)
    }

    /// Draw the time until the next modulation switch.
    pub fn next_sojourn(&self, rng: &mut StdRng) -> f64 {
        match self.mixing {
            RateMixing::Fixed => f64::INFINITY,
            _ => self.sojourn.sample(rng),
        }
    }

    /// Fold the process's *configuration* — mean rate, mixing family and
    /// parameters, sojourn rate — into an FNV-1a accumulator. The runtime
    /// `current_rate` is deliberately excluded: two processes with equal
    /// configuration are interchangeable at run start, which is the
    /// identity the fleet checkpoint key needs.
    pub fn digest_into(&self, hash: &mut u64) {
        crate::stats::fnv_fold(hash, self.mean_rate.to_bits());
        match self.mixing {
            RateMixing::Fixed => crate::stats::fnv_fold(hash, 0),
            RateMixing::Exponential => crate::stats::fnv_fold(hash, 1),
            RateMixing::Pareto { z, cap } => {
                crate::stats::fnv_fold(hash, 2);
                crate::stats::fnv_fold(hash, z.to_bits());
                crate::stats::fnv_fold(hash, cap.to_bits());
            }
        }
        crate::stats::fnv_fold(hash, self.sojourn.rate.to_bits());
    }

    /// Re-draw the instantaneous rate from the mixing distribution.
    pub fn switch(&mut self, rng: &mut StdRng) {
        self.current_rate = match self.mixing {
            RateMixing::Fixed => self.mean_rate,
            RateMixing::Exponential => {
                // Exponential with mean `mean_rate`.
                ExpSampler::new(1.0 / self.mean_rate).sample(rng)
            }
            RateMixing::Pareto { z, cap } => {
                // Bounded Pareto on [1, cap] scaled so the long-run mean is
                // `mean_rate`.
                let bp = BoundedPareto::new(z, cap);
                let a = z - 1.0;
                // Mean of bounded Pareto on [1, cap]:
                // a/(a−1) · (1 − cap^{1−a})/(1 − cap^{−a}), for a ≠ 1.
                let mean_bp = if (a - 1.0).abs() < 1e-12 {
                    (cap.ln()) / (1.0 - 1.0 / cap)
                } else {
                    a / (a - 1.0) * (1.0 - cap.powf(1.0 - a)) / (1.0 - cap.powf(-a))
                };
                bp.sample(rng) * self.mean_rate / mean_bp
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_rate_never_switches() {
        let mut p = MixedPoisson::fixed(2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.next_sojourn(&mut rng), f64::INFINITY);
        p.switch(&mut rng);
        assert_eq!(p.current_rate(), 2.0);
    }

    #[test]
    fn interarrivals_have_rate_mean() {
        let p = MixedPoisson::fixed(4.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| p.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mixing_preserves_mean_rate() {
        let mut p = MixedPoisson::new(10.0, RateMixing::Exponential, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            p.switch(&mut rng);
            sum += p.current_rate();
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean rate {mean}");
    }

    #[test]
    fn pareto_mixing_preserves_mean_rate_and_is_heavy() {
        let mut p =
            MixedPoisson::new(10.0, RateMixing::Pareto { z: 2.5, cap: 1e4 }, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 400_000;
        let mut sum = 0.0;
        let mut exceed = 0u64;
        for _ in 0..n {
            p.switch(&mut rng);
            sum += p.current_rate();
            if p.current_rate() > 50.0 {
                exceed += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean rate {mean}");
        // Power tail: P[rate > 5×mean] far exceeds the exponential analogue
        // e^{−5} ≈ 6.7e−3... for Pareto z=2.5 the 5x-exceed probability is
        // on the order of (x0/50)^{1.5}; just check it is substantial.
        let frac = exceed as f64 / n as f64;
        assert!(frac > 0.01, "tail fraction {frac}");
    }
}
