//! Streaming statistics (Welford's online mean/variance) and the FNV
//! fold used by bitwise determinism digests.

/// Fold one 64-bit word into an FNV-1a accumulator (byte-wise, so the
/// digest is stable across platforms of the same endianness-free
/// byte decomposition).
pub fn fnv_fold(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Fold a byte string (length-prefixed, so `"ab" + "c"` and `"a" + "bc"`
/// hash differently) into an FNV-1a accumulator.
pub fn fnv_fold_bytes(hash: &mut u64, bytes: &[u8]) {
    fnv_fold(hash, bytes.len() as u64);
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Welford's single-pass mean and variance accumulator with a normal-theory
/// confidence half-width helper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// New empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval (1.96 standard errors;
    /// per-flow utilities are not i.i.d. — flows overlap in time — so treat
    /// this as an optimistic indication, not a guarantee).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Absorb another accumulator (Chan et al.'s parallel combination).
    ///
    /// The result depends on the *order* of merges — floating-point
    /// addition is not associative — so deterministic pipelines must merge
    /// in a fixed order (the fleet merges strictly by lane index, which is
    /// what makes `SimReport::digest` shard-count-invariant).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / total);
        self.n += other.n;
    }

    /// Fold the accumulator's exact state (count and the bit patterns of
    /// mean and M₂) into an FNV-1a digest accumulator.
    pub fn digest_into(&self, hash: &mut u64) {
        fnv_fold(hash, self.n);
        fnv_fold(hash, self.mean.to_bits());
        fnv_fold(hash, self.m2.to_bits());
    }

    /// The exact internal state `(n, mean, M₂)` — what a checkpoint must
    /// persist to reconstruct the accumulator bitwise.
    #[must_use]
    pub fn state(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from a persisted [`state`](Self::state)
    /// triple. Round-tripping through `state`/`from_state` is bitwise
    /// lossless (the fleet checkpoint relies on that).
    #[must_use]
    pub fn from_state(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_on_small_set() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance 4; sample variance 4·8/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let mut w = Welford::new();
        let mut x: u64 = 1;
        let mut widths = Vec::new();
        for i in 1..=10_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            w.add((x >> 11) as f64 / (1u64 << 53) as f64);
            if i == 100 || i == 10_000 {
                widths.push(w.ci95());
            }
        }
        assert!(widths[1] < widths[0] / 5.0, "CI must shrink ~1/√n: {widths:?}");
    }
}
