//! Time-weighted occupancy census — the simulator's empirical `P(k)`.

use bevra_load::Tabulated;

/// Accumulates the fraction of time the link spends at each population
/// level, plus the population distribution *seen by arrivals* (which, for
/// Poisson arrivals, PASTA guarantees matches the time distribution).
#[derive(Debug, Clone, Default)]
pub struct Census {
    /// `time_at[k]` = total time with exactly `k` flows active.
    time_at: Vec<f64>,
    /// `seen_at[k]` = number of arrivals finding `k` flows already active.
    seen_at: Vec<u64>,
    total_time: f64,
}

impl Census {
    /// New empty census.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the population was `k` for duration `dt`.
    pub fn dwell(&mut self, k: u64, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let idx = k as usize;
        if idx >= self.time_at.len() {
            self.time_at.resize(idx + 1, 0.0);
        }
        self.time_at[idx] += dt;
        self.total_time += dt;
    }

    /// Record that an arrival found `k` flows active.
    pub fn arrival_saw(&mut self, k: u64) {
        let idx = k as usize;
        if idx >= self.seen_at.len() {
            self.seen_at.resize(idx + 1, 0);
        }
        self.seen_at[idx] += 1;
    }

    /// Total observed time.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Time-weighted mean population.
    #[must_use]
    pub fn mean_population(&self) -> f64 {
        if self.total_time == 0.0 {
            return 0.0;
        }
        self.time_at
            .iter()
            .enumerate()
            .map(|(k, &t)| k as f64 * t)
            .sum::<f64>()
            / self.total_time
    }

    /// Empirical time-stationary occupancy distribution, as a [`Tabulated`]
    /// ready to feed into the analytical model.
    ///
    /// # Panics
    ///
    /// Panics if no time has been observed.
    #[must_use]
    pub fn occupancy(&self) -> Tabulated {
        assert!(self.total_time > 0.0, "census has observed no time");
        Tabulated::from_weights(self.time_at.clone())
    }

    /// Empirical arrival-seen distribution (PASTA comparand).
    ///
    /// # Panics
    ///
    /// Panics if no arrivals were recorded.
    #[must_use]
    pub fn seen_by_arrivals(&self) -> Tabulated {
        assert!(!self.seen_at.is_empty(), "census has observed no arrivals");
        Tabulated::from_weights(self.seen_at.iter().map(|&c| c as f64).collect())
    }

    /// Absorb another census by element-wise addition.
    ///
    /// Like [`Welford::merge`](crate::stats::Welford::merge) the result is
    /// order-sensitive in its float sums, so deterministic aggregation
    /// must fix the merge order (the fleet merges by lane index).
    pub fn merge(&mut self, other: &Self) {
        if other.time_at.len() > self.time_at.len() {
            self.time_at.resize(other.time_at.len(), 0.0);
        }
        for (k, &t) in other.time_at.iter().enumerate() {
            self.time_at[k] += t;
        }
        if other.seen_at.len() > self.seen_at.len() {
            self.seen_at.resize(other.seen_at.len(), 0);
        }
        for (k, &c) in other.seen_at.iter().enumerate() {
            self.seen_at[k] += c;
        }
        self.total_time += other.total_time;
    }

    /// The exact internal state — dwell times, arrival counts, total
    /// time — for bitwise checkpointing.
    #[must_use]
    pub fn state(&self) -> (&[f64], &[u64], f64) {
        (&self.time_at, &self.seen_at, self.total_time)
    }

    /// Rebuild a census from a persisted [`state`](Self::state). The
    /// round trip is bitwise lossless.
    #[must_use]
    pub fn from_state(time_at: Vec<f64>, seen_at: Vec<u64>, total_time: f64) -> Self {
        Self { time_at, seen_at, total_time }
    }

    /// Fold the census's exact state — every dwell time's bit pattern,
    /// every arrival count, the total time — into an FNV-1a accumulator.
    /// Used by `SimReport::digest` for bitwise determinism checks.
    pub fn digest_into(&self, hash: &mut u64) {
        crate::stats::fnv_fold(hash, self.time_at.len() as u64);
        for &t in &self.time_at {
            crate::stats::fnv_fold(hash, t.to_bits());
        }
        crate::stats::fnv_fold(hash, self.seen_at.len() as u64);
        for &n in &self.seen_at {
            crate::stats::fnv_fold(hash, n);
        }
        crate::stats::fnv_fold(hash, self.total_time.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwell_times_normalize() {
        let mut c = Census::new();
        c.dwell(0, 1.0);
        c.dwell(1, 3.0);
        c.dwell(2, 1.0);
        let occ = c.occupancy();
        assert!((occ.pmf(1) - 0.6).abs() < 1e-12);
        assert!((c.mean_population() - 1.0).abs() < 1e-12);
        assert!((c.total_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut c = Census::new();
        c.dwell(5, 0.0);
        c.dwell(1, 2.0);
        assert_eq!(c.total_time(), 2.0);
        assert_eq!(c.occupancy().pmf(5), 0.0);
    }

    #[test]
    fn arrival_counts_tabulate() {
        let mut c = Census::new();
        for _ in 0..3 {
            c.arrival_saw(2);
        }
        c.arrival_saw(0);
        let seen = c.seen_by_arrivals();
        assert!((seen.pmf(2) - 0.75).abs() < 1e-12);
        assert!((seen.pmf(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "observed no time")]
    fn empty_census_panics() {
        let _ = Census::new().occupancy();
    }
}
