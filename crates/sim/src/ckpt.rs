//! Crash-safe fleet checkpoints: per-lane report persistence.
//!
//! A killed fleet run loses every lane it had already simulated. This
//! module persists completed lane reports to disk incrementally, keyed by
//! a content hash of the fleet configuration
//! ([`crate::runner::SimConfig::fingerprint`] plus the lane count), so a
//! resumed run restores finished lanes **bitwise** and re-simulates only
//! what is missing — the resumed merged report is bitwise-identical to an
//! uninterrupted run's (`tests/resilience.rs` pins this against the
//! workspace's fleet digest).
//!
//! The design rules are shared with the engine's sweep checkpoint
//! (`bevra_engine::checkpoint`):
//!
//! * **Never wrong, never fatal.** Entries carry the key, the lane
//!   count, and an FNV checksum; a missing, truncated, corrupt, or
//!   mismatched file restores nothing. Store failures are counted and
//!   swallowed.
//! * **Atomic writes** via [`bevra_faults::atomic_write`]
//!   (write-temp-then-rename), fault sites `fleet-ckpt/store` and
//!   `io/fleet-ckpt/load`.
//! * **Only clean lanes.** Truncated (budget- or deadline-cut) lanes are
//!   never checkpointed — they are re-run on resume, so a resumed run
//!   can only be *more* complete than the interrupted one.
//!
//! Gating is the engine's: `BEVRA_CHECKPOINT` (`rw`/`ro`, anything else
//! warns once and is ignored) and `BEVRA_CHECKPOINT_DIR`.

use crate::runner::SimReport;
use crate::stats::Welford;
use bevra_engine::{CacheMode, CheckpointStore};
use bevra_obs::metrics;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag; bump when the entry layout changes (old entries then
/// restore nothing).
const FORMAT: &str = "bevra-fleet-ckpt v1";

/// Shards per checkpoint group: a checkpointing fleet persists completed
/// lanes and crosses the `sim/fleet-ckpt` kill site once per this many
/// completed shards.
pub const GROUP_SHARDS: usize = 4;

/// An on-disk per-lane fleet checkpoint store (see module docs).
#[derive(Debug)]
pub struct FleetCheckpoint {
    dir: PathBuf,
    mode: CacheMode,
    restored: AtomicU64,
    stores: AtomicU64,
    io_errors: AtomicU64,
}

/// FNV-1a over a byte stream (the workspace content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FleetCheckpoint {
    /// Store rooted at `dir` with an explicit mode. The directory is
    /// created lazily by the first store (via `atomic_write`).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            dir: dir.into(),
            mode,
            restored: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Store configured from the environment — the same
    /// `BEVRA_CHECKPOINT` / `BEVRA_CHECKPOINT_DIR` contract as the
    /// engine's sweep checkpoint (malformed modes warn once, attributed
    /// to `component`, and disable checkpointing).
    #[must_use]
    pub fn from_env(component: &str) -> Option<Self> {
        // Reuse the engine's parsing (env grammar, warn-once dedup,
        // default directory) so the two checkpoint layers can never
        // drift apart in how they read the knobs.
        let engine = CheckpointStore::from_env(component)?;
        let mode = if std::env::var(bevra_engine::CHECKPOINT_ENV)
            .is_ok_and(|v| v.trim() == "ro")
        {
            CacheMode::ReadOnly
        } else {
            CacheMode::ReadWrite
        };
        Some(Self::new(engine.dir(), mode))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lanes restored from disk so far.
    pub fn restored_lanes(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Successful checkpoint writes.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Load/store attempts absorbed as I/O failures (injected or real).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("fleet-{key:016x}.bvk"))
    }

    /// Restore the completed lane reports recorded under `key` for a
    /// fleet of `lanes` lanes: one slot per lane, `None` where nothing
    /// was checkpointed. Any problem — injected I/O fault, unreadable
    /// file, format/key/length/checksum mismatch — restores nothing.
    pub fn load(&self, key: u64, lanes: usize) -> Vec<Option<SimReport>> {
        let mut out: Vec<Option<SimReport>> = (0..lanes).map(|_| None).collect();
        if bevra_faults::io_fault("io/fleet-ckpt/load", key).is_some() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            metrics::counter("sim/fleet/ckpt/io_error").inc();
            return out;
        }
        let Ok(text) = std::fs::read_to_string(self.entry_path(key)) else {
            return out;
        };
        if let Some(rows) = parse_entry(&text, key, lanes) {
            let restored = rows.len() as u64;
            for (lane, report) in rows {
                out[lane] = Some(report);
            }
            self.restored.fetch_add(restored, Ordering::Relaxed);
            metrics::counter("sim/fleet/ckpt/restored").add(restored);
        }
        out
    }

    /// Persist the completed `(lane, report)` pairs of a `lanes`-lane
    /// fleet under `key`, replacing any previous checkpoint (no-op in
    /// [`CacheMode::ReadOnly`]). Failures are counted and swallowed.
    pub fn store(&self, key: u64, lanes: usize, reports: &[(usize, &SimReport)]) {
        if self.mode == CacheMode::ReadOnly {
            return;
        }
        let bytes = serialize_entry(key, lanes, reports);
        match bevra_faults::atomic_write("fleet-ckpt/store", &self.entry_path(key), &bytes) {
            Ok(_) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                metrics::counter("sim/fleet/ckpt/store").inc();
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                metrics::counter("sim/fleet/ckpt/io_error").inc();
            }
        }
    }

    /// Remove the checkpoint stored under `key` — called after a fleet
    /// completes with every lane ok, so a finished run leaves no stale
    /// state (no-op in read-only mode).
    pub fn clear(&self, key: u64) {
        if self.mode == CacheMode::ReadOnly {
            return;
        }
        let _ = std::fs::remove_file(self.entry_path(key));
    }
}

fn serialize_entry(key: u64, lanes: usize, reports: &[(usize, &SimReport)]) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut sorted: Vec<&(usize, &SimReport)> = reports.iter().collect();
    sorted.sort_by_key(|(lane, _)| *lane);
    let mut body = String::new();
    let _ = writeln!(body, "{FORMAT}");
    let _ = writeln!(body, "key {key:016x}");
    let _ = writeln!(body, "lanes {lanes}");
    for (lane, r) in sorted {
        let _ = write!(
            body,
            "{lane:08x} {:x} {:x} {:x} {:x} {:x} {:x}",
            r.completed, r.lost, r.blocked_attempts, r.attempts, r.retries, r.events,
        );
        for w in [&r.utility_at_admission, &r.utility_time_avg, &r.utility_worst] {
            let (n, mean, m2) = w.state();
            let _ = write!(body, " {n:x} {:016x} {:016x}", mean.to_bits(), m2.to_bits());
        }
        let (time_at, seen_at, total_time) = r.census.state();
        let _ = write!(body, " {:x}", time_at.len());
        for t in time_at {
            let _ = write!(body, " {:016x}", t.to_bits());
        }
        let _ = write!(body, " {:x}", seen_at.len());
        for s in seen_at {
            let _ = write!(body, " {s:x}");
        }
        let _ = writeln!(body, " {:016x}", total_time.to_bits());
    }
    let _ = writeln!(body, "crc {:016x}", fnv1a(body.as_bytes()));
    body.into_bytes()
}

/// Parse and fully validate one entry; `None` on any mismatch.
fn parse_entry(text: &str, key: u64, lanes: usize) -> Option<Vec<(usize, SimReport)>> {
    let crc_at = text.rfind("crc ")?;
    let (body, crc_line) = text.split_at(crc_at);
    let recorded = u64::from_str_radix(crc_line.strip_prefix("crc ")?.trim(), 16).ok()?;
    if fnv1a(body.as_bytes()) != recorded {
        return None;
    }
    let mut lines = body.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let stored_key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    if stored_key != key {
        return None;
    }
    let stored_lanes: usize = lines.next()?.strip_prefix("lanes ")?.parse().ok()?;
    if stored_lanes != lanes {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let mut fields = line.split_ascii_whitespace();
        let mut next_u64 = || -> Option<u64> { u64::from_str_radix(fields.next()?, 16).ok() };
        let lane = next_u64()? as usize;
        if lane >= lanes {
            return None;
        }
        let mut report = SimReport::empty();
        report.completed = next_u64()?;
        report.lost = next_u64()?;
        report.blocked_attempts = next_u64()?;
        report.attempts = next_u64()?;
        report.retries = next_u64()?;
        report.events = next_u64()?;
        for w in [
            &mut report.utility_at_admission,
            &mut report.utility_time_avg,
            &mut report.utility_worst,
        ] {
            let n = next_u64()?;
            let mean = f64::from_bits(next_u64()?);
            let m2 = f64::from_bits(next_u64()?);
            *w = Welford::from_state(n, mean, m2);
        }
        let t_len = next_u64()? as usize;
        if t_len > (1 << 24) {
            return None;
        }
        let mut time_at = Vec::with_capacity(t_len);
        for _ in 0..t_len {
            time_at.push(f64::from_bits(next_u64()?));
        }
        let s_len = next_u64()? as usize;
        if s_len > (1 << 24) {
            return None;
        }
        let mut seen_at = Vec::with_capacity(s_len);
        for _ in 0..s_len {
            seen_at.push(next_u64()?);
        }
        let total_time = f64::from_bits(next_u64()?);
        if fields.next().is_some() {
            return None;
        }
        report.census = crate::census::Census::from_state(time_at, seen_at, total_time);
        rows.push((lane, report));
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::MixedPoisson;
    use crate::holding::HoldingDist;
    use crate::link::Discipline;
    use crate::runner::{SimConfig, Simulation};
    use bevra_utility::AdaptiveExp;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("bevra-fleet-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_report(seed: u64) -> SimReport {
        Simulation::new(SimConfig {
            capacity: 25.0,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::fixed(20.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 10.0,
            horizon: 100.0,
            seed,
            max_events: None,
        })
        .run()
    }

    #[test]
    fn partial_round_trip_is_bitwise() {
        let cs = FleetCheckpoint::new(tmp_dir("rt"), CacheMode::ReadWrite);
        let key = 0xFACE_u64;
        assert!(cs.load(key, 4).iter().all(Option::is_none), "cold restore is empty");
        let (r0, r2) = (sample_report(1), sample_report(2));
        cs.store(key, 4, &[(0, &r0), (2, &r2)]);
        let got = cs.load(key, 4);
        assert!(got[1].is_none() && got[3].is_none());
        assert_eq!(got[0].as_ref().expect("lane 0").digest(), r0.digest());
        assert_eq!(got[2].as_ref().expect("lane 2").digest(), r2.digest());
        assert_eq!(got[0].as_ref().expect("lane 0").events, r0.events);
        assert_eq!(cs.restored_lanes(), 2);
        assert_eq!(cs.stores(), 1);
    }

    #[test]
    fn mismatch_and_corruption_restore_nothing() {
        let cs = FleetCheckpoint::new(tmp_dir("bad"), CacheMode::ReadWrite);
        let key = 77;
        let r = sample_report(3);
        cs.store(key, 2, &[(1, &r)]);
        assert!(cs.load(key, 3).iter().all(Option::is_none), "lane-count mismatch");
        assert!(cs.load(key + 1, 2).iter().all(Option::is_none), "key mismatch");
        let path = cs.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(cs.load(key, 2).iter().all(Option::is_none), "corruption");
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(cs.load(key, 2).iter().all(Option::is_none), "truncation");
        assert_eq!(cs.restored_lanes(), 0);
    }

    #[test]
    fn read_only_never_writes_and_clear_removes() {
        let dir = tmp_dir("ro");
        let r = sample_report(4);
        let ro = FleetCheckpoint::new(dir.clone(), CacheMode::ReadOnly);
        ro.store(5, 1, &[(0, &r)]);
        assert!(!dir.exists(), "read-only mode must not create the dir");
        let rw = FleetCheckpoint::new(dir, CacheMode::ReadWrite);
        rw.store(5, 1, &[(0, &r)]);
        assert!(rw.load(5, 1)[0].is_some());
        rw.clear(5);
        assert!(rw.load(5, 1).iter().all(Option::is_none));
    }

    #[test]
    fn store_absorbs_injected_permanent_io_faults() {
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let cs = FleetCheckpoint::new(tmp_dir("io"), CacheMode::ReadWrite);
        let r = sample_report(5);
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoPermanent, "io/fleet-ckpt/store"));
        {
            let _guard = install(plan);
            cs.store(11, 1, &[(0, &r)]);
        }
        assert_eq!(cs.stores(), 0);
        assert_eq!(cs.io_errors(), 1);
        assert!(cs.load(11, 1)[0].is_none());
    }
}
