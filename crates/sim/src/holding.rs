//! Flow holding-time distributions.

use bevra_load::{ExpSampler, ParetoSampler};
use rand::rngs::StdRng;

/// How long an admitted flow stays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HoldingDist {
    /// Exponential with the given mean — the M/M/∞ baseline whose occupancy
    /// correspondences the simulator's validation relies on.
    Exponential {
        /// Mean holding time.
        mean: f64,
    },
    /// Pareto (heavy-tailed) with exponent `z > 2`, scaled to the given
    /// mean — models the long-lived sessions behind the §5.1 sampling
    /// discussion ("flows are very long lived, so each flow will eventually
    /// experience an overload condition").
    Pareto {
        /// Mean holding time.
        mean: f64,
        /// Tail exponent (`> 2` so the mean exists).
        z: f64,
    },
    /// Deterministic duration.
    Deterministic {
        /// Fixed holding time.
        mean: f64,
    },
}

impl HoldingDist {
    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            HoldingDist::Exponential { mean }
            | HoldingDist::Pareto { mean, .. }
            | HoldingDist::Deterministic { mean } => mean,
        }
    }

    /// Draw one holding time.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            HoldingDist::Exponential { mean } => ExpSampler::new(1.0 / mean).sample(rng),
            HoldingDist::Pareto { mean, z } => {
                // Raw Pareto on [1, ∞) has mean (z−1)/(z−2); rescale.
                let raw = ParetoSampler::new(z).sample(rng);
                raw * mean * (z - 2.0) / (z - 1.0)
            }
            HoldingDist::Deterministic { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn means_match_configuration() {
        let mut rng = StdRng::seed_from_u64(11);
        for dist in [
            HoldingDist::Exponential { mean: 3.0 },
            HoldingDist::Pareto { mean: 3.0, z: 3.5 },
            HoldingDist::Deterministic { mean: 3.0 },
        ] {
            let n = 300_000;
            let m: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((m - 3.0).abs() < 0.1, "{dist:?}: mean {m}");
            assert_eq!(dist.mean(), 3.0);
        }
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = HoldingDist::Pareto { mean: 1.0, z: 2.5 };
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
