//! Fault plans: what to break, where, and how often.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultRule`]s. Every rule
//! names a fault [`FaultKind`], a *site pattern* (matched against the
//! hierarchical site names compiled into the workspace, e.g.
//! `engine/point` or `io/report/figure-json`), and an optional trigger
//! parameter: a probability `p`, an exact key `at`, or a count `n`.
//!
//! # The `BEVRA_FAULTS` grammar
//!
//! ```text
//! plan   := clause (';' clause)*
//! clause := 'seed=' <u64>
//!         | kind ':' site [ '@' param (',' param)* ]
//! kind   := 'panic' | 'nan' | 'inf' | 'numerr'
//!         | 'io-transient' | 'io-permanent' | 'budget'
//! param  := 'p=' <f64 in [0,1]>   (probability per key; default 1)
//!         | 'at=' <u64>           (trip exactly at this key)
//!         | 'n=' <u64>            (io-transient: failing attempts;
//!                                  budget: the event budget)
//! ```
//!
//! Examples:
//!
//! ```text
//! BEVRA_FAULTS='panic:engine/point@at=3'
//! BEVRA_FAULTS='seed=7;nan:eval/best_effort@p=0.05;io-transient:io/report@n=2'
//! BEVRA_FAULTS='budget:sim/budget@n=10000;numerr:num/roots@p=0.5'
//! ```
//!
//! Site patterns match a query site exactly, as a `/`-separated prefix
//! (`io` matches `io/report/perf-json`), or universally with `*`.
//!
//! # Determinism
//!
//! Whether a probabilistic rule trips for a given `(site, key)` is a pure
//! function of `(plan seed, rule kind, site, key)` — no global counters,
//! no wall clock — so two runs of the same plan against the same workload
//! inject exactly the same faults regardless of thread count or
//! scheduling. Call sites choose keys that are stable across execution
//! modes (grid indices, argument bit patterns, attempt numbers).

use std::fmt;

/// The kinds of fault this crate can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the instrumented site (exercises worker isolation).
    Panic,
    /// Replace the site's `f64` result with `NaN`.
    Nan,
    /// Replace the site's `f64` result with `+∞`.
    Inf,
    /// Force the site's numerical routine to report non-convergence
    /// (`NumError::MaxIterations` in `bevra-num`).
    NumErr,
    /// Fail an I/O attempt, leaving a truncated temp file behind; later
    /// attempts may succeed (see the `n` parameter).
    IoTransient,
    /// Fail every I/O attempt at the site.
    IoPermanent,
    /// Override an execution budget (e.g. the simulator watchdog) with
    /// the rule's `n`.
    Budget,
}

impl FaultKind {
    /// The grammar token naming this kind (`panic`, `nan`, `io-transient`,
    /// …) — also the stable label used by the flight-recorder blackbox.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::NumErr => "numerr",
            FaultKind::IoTransient => "io-transient",
            FaultKind::IoPermanent => "io-permanent",
            FaultKind::Budget => "budget",
        }
    }

    fn parse(tok: &str) -> Option<Self> {
        Some(match tok {
            "panic" => FaultKind::Panic,
            "nan" => FaultKind::Nan,
            "inf" => FaultKind::Inf,
            "numerr" => FaultKind::NumErr,
            "io-transient" => FaultKind::IoTransient,
            "io-permanent" => FaultKind::IoPermanent,
            "budget" => FaultKind::Budget,
            _ => return None,
        })
    }
}

/// One injection rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Site pattern: exact site, `/`-separated prefix, or `*`.
    pub site: String,
    /// Trip probability per key in `[0, 1]`; ignored when `at` is set.
    pub prob: f64,
    /// Trip exactly when the query key equals this value.
    pub at: Option<u64>,
    /// Kind-specific count: failing attempts for `io-transient`, the
    /// budget for `budget`.
    pub n: Option<u64>,
}

impl FaultRule {
    /// A rule that always trips at `site`.
    #[must_use]
    pub fn always(kind: FaultKind, site: impl Into<String>) -> Self {
        Self { kind, site: site.into(), prob: 1.0, at: None, n: None }
    }

    /// A rule tripping with probability `p` per key.
    #[must_use]
    pub fn with_prob(kind: FaultKind, site: impl Into<String>, p: f64) -> Self {
        Self { kind, site: site.into(), prob: p.clamp(0.0, 1.0), at: None, n: None }
    }

    /// A rule tripping exactly at key `at`.
    #[must_use]
    pub fn at_key(kind: FaultKind, site: impl Into<String>, at: u64) -> Self {
        Self { kind, site: site.into(), prob: 1.0, at: Some(at), n: None }
    }

    /// Attach the kind-specific count `n`.
    #[must_use]
    pub fn with_n(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// Whether this rule's pattern covers `site`: exact match, a
    /// `/`-separated prefix, or the universal `*`.
    #[must_use]
    pub fn matches_site(&self, site: &str) -> bool {
        self.site == "*"
            || self.site == site
            || (site.len() > self.site.len()
                && site.starts_with(&self.site)
                && site.as_bytes()[self.site.len()] == b'/')
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind.token(), self.site)?;
        let mut sep = '@';
        if let Some(at) = self.at {
            write!(f, "{sep}at={at}")?;
            sep = ',';
        } else if self.prob < 1.0 {
            write!(f, "{sep}p={}", self.prob)?;
            sep = ',';
        }
        if let Some(n) = self.n {
            write!(f, "{sep}n={n}")?;
        }
        Ok(())
    }
}

/// A complete injection plan: a seed plus the rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every probabilistic decision.
    pub seed: u64,
    /// The injection rules, in declaration order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Append a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Parse the [`BEVRA_FAULTS` grammar](self). Returns an error naming
    /// the first malformed clause; an empty/whitespace string is the
    /// empty plan.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed clause.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed clause: {clause:?}"))?;
                continue;
            }
            let (kind_tok, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause missing ':' separator: {clause:?}"))?;
            let kind = FaultKind::parse(kind_tok.trim())
                .ok_or_else(|| format!("unknown fault kind {:?} in {clause:?}", kind_tok.trim()))?;
            let (site, params) = match rest.split_once('@') {
                Some((s, p)) => (s.trim(), Some(p)),
                None => (rest.trim(), None),
            };
            if site.is_empty() {
                return Err(format!("empty site in clause {clause:?}"));
            }
            let mut rule = FaultRule::always(kind, site);
            if let Some(params) = params {
                for param in params.split(',') {
                    let param = param.trim();
                    if let Some(p) = param.strip_prefix("p=") {
                        let p: f64 = p
                            .parse()
                            .map_err(|_| format!("bad p= value in {clause:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("p= outside [0,1] in {clause:?}"));
                        }
                        rule.prob = p;
                    } else if let Some(at) = param.strip_prefix("at=") {
                        rule.at = Some(
                            at.parse().map_err(|_| format!("bad at= value in {clause:?}"))?,
                        );
                    } else if let Some(n) = param.strip_prefix("n=") {
                        rule.n = Some(
                            n.parse().map_err(|_| format!("bad n= value in {clause:?}"))?,
                        );
                    } else {
                        return Err(format!("unknown parameter {param:?} in {clause:?}"));
                    }
                }
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }

    /// Whether `kind` trips at `(site, key)` under this plan — the pure
    /// decision function documented in the [module docs](self).
    #[must_use]
    pub fn trips(&self, kind: FaultKind, site: &str, key: u64) -> bool {
        self.rules.iter().any(|r| r.kind == kind && r.matches_site(site) && {
            match r.at {
                Some(at) => key == at,
                None => {
                    r.prob >= 1.0
                        || decision_unit(self.seed, kind, site, key) < r.prob
                }
            }
        })
    }

    /// The first matching rule's `n` parameter for `kind` at `site`.
    #[must_use]
    pub fn count_for(&self, kind: FaultKind, site: &str) -> Option<u64> {
        self.rules
            .iter()
            .find(|r| r.kind == kind && r.matches_site(site))
            .and_then(|r| r.n)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for r in &self.rules {
            write!(f, ";{r}")?;
        }
        Ok(())
    }
}

/// FNV-1a over a byte slice, used to fold site names into the decision.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer: a full-avalanche bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform in `[0, 1)` for a `(seed, kind, site, key)`
/// tuple — the probability comparison basis of [`FaultPlan::trips`].
fn decision_unit(seed: u64, kind: FaultKind, site: &str, key: u64) -> f64 {
    let h = mix(seed ^ fnv1a(site.as_bytes()) ^ mix(key ^ (kind as u64) << 56));
    // 53 high bits -> exactly representable uniform in [0,1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        let text = "seed=7;panic:engine/point@at=3;nan:eval@p=0.25;io-transient:io/report@n=2";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("panic").is_err(), "missing colon");
        assert!(FaultPlan::parse("explode:x").is_err(), "unknown kind");
        assert!(FaultPlan::parse("panic:").is_err(), "empty site");
        assert!(FaultPlan::parse("nan:x@p=2.0").is_err(), "p out of range");
        assert!(FaultPlan::parse("nan:x@q=1").is_err(), "unknown param");
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" ; ; ").unwrap(), FaultPlan::default());
    }

    #[test]
    fn site_matching_is_exact_prefix_or_star() {
        let r = FaultRule::always(FaultKind::Nan, "io/report");
        assert!(r.matches_site("io/report"));
        assert!(r.matches_site("io/report/perf-json"));
        assert!(!r.matches_site("io/reporting"), "prefix must end at '/'");
        assert!(!r.matches_site("io"));
        assert!(FaultRule::always(FaultKind::Nan, "*").matches_site("anything/at/all"));
    }

    #[test]
    fn at_key_trips_exactly_once() {
        let plan = FaultPlan::seeded(1).rule(FaultRule::at_key(FaultKind::Panic, "engine/point", 3));
        for key in 0..10 {
            assert_eq!(plan.trips(FaultKind::Panic, "engine/point", key), key == 3);
        }
        assert!(!plan.trips(FaultKind::Nan, "engine/point", 3), "kind must match");
    }

    #[test]
    fn probabilistic_decisions_are_deterministic_and_calibrated() {
        let plan =
            FaultPlan::seeded(42).rule(FaultRule::with_prob(FaultKind::Nan, "eval", 0.25));
        let hits: Vec<u64> =
            (0..4000).filter(|&k| plan.trips(FaultKind::Nan, "eval/x", k)).collect();
        let again: Vec<u64> =
            (0..4000).filter(|&k| plan.trips(FaultKind::Nan, "eval/x", k)).collect();
        assert_eq!(hits, again, "same plan, same decisions");
        let rate = hits.len() as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
        // A different seed flips a different subset.
        let other = FaultPlan::seeded(43).rule(FaultRule::with_prob(FaultKind::Nan, "eval", 0.25));
        let other_hits: Vec<u64> =
            (0..4000).filter(|&k| other.trips(FaultKind::Nan, "eval/x", k)).collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn count_for_returns_first_matching_rule() {
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::Budget, "sim/budget").with_n(1000))
            .rule(FaultRule::always(FaultKind::Budget, "*").with_n(5));
        assert_eq!(plan.count_for(FaultKind::Budget, "sim/budget"), Some(1000));
        assert_eq!(plan.count_for(FaultKind::Budget, "other"), Some(5));
        assert_eq!(plan.count_for(FaultKind::IoTransient, "sim/budget"), None);
    }
}
