//! Atomic artifact persistence with injectable failures.
//!
//! Every artifact the workspace emits (figure JSON, panel CSVs, perf
//! reports, traces) goes through [`atomic_write`]: render fully in
//! memory, write to a sibling temp file, then `rename` onto the final
//! path. On POSIX the rename is atomic, so an interrupt — real or
//! injected — leaves either the complete old artifact or the complete
//! new one on disk, never a truncated hybrid.
//!
//! Transient failures are retried with bounded exponential backoff
//! driven by a [`Clock`]: production callers sleep for real
//! ([`WallClock`]), while fault-injected runs use a [`VirtualClock`]
//! that only *accounts* the backoff, keeping chaos tests deterministic
//! and sleep-free. [`atomic_write`] picks the virtual clock
//! automatically whenever a fault plan is active.
//!
//! The actual file operations go through the [`Writer`] trait so tests
//! can substitute their own; the default [`WallClock`]/[`FaultWriter`]
//! pair consults the ambient fault plan at sites
//! `io/<site>` per attempt, and an injected transient fault deliberately
//! leaves a *truncated temp file* behind — simulating a process killed
//! mid-write — which the retry overwrites and the final rename ignores.

use crate::IoFault;
use std::io;
use std::path::{Path, PathBuf};

/// File operations behind [`atomic_write_with`], substitutable in tests.
pub trait Writer {
    /// Write `bytes` to `path`, creating or truncating it.
    ///
    /// # Errors
    ///
    /// Any I/O error; [`ErrorKind::Interrupted`](io::ErrorKind) is
    /// treated as transient by the retry loop.
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically move `from` onto `to`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the rename.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
}

/// Backoff time source for the retry loop.
pub trait Clock {
    /// Wait `ms` milliseconds (or just account them).
    fn sleep_ms(&mut self, ms: u64);
    /// Total backoff accounted so far.
    fn total_ms(&self) -> u64;
}

/// A [`Clock`] that accounts backoff without sleeping — the
/// deterministic fault clock used whenever injection is active.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock {
    elapsed: u64,
}

impl Clock for VirtualClock {
    fn sleep_ms(&mut self, ms: u64) {
        self.elapsed += ms;
    }

    fn total_ms(&self) -> u64 {
        self.elapsed
    }
}

/// A [`Clock`] that really sleeps (production transient-error handling).
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock {
    elapsed: u64,
}

impl Clock for WallClock {
    // The one sanctioned raw sleep in the workspace: every other caller
    // waits through a Clock so fault-injected runs stay sleep-free
    // (clippy.toml bans std::thread::sleep everywhere else).
    #[allow(clippy::disallowed_methods)]
    fn sleep_ms(&mut self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        self.elapsed += ms;
    }

    fn total_ms(&self) -> u64 {
        self.elapsed
    }
}

/// Bounded-retry policy of [`atomic_write`]: exponential backoff
/// `base · 2^attempt`, capped per-step, at most `max_attempts` tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum write attempts (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_backoff_ms: u64,
    /// Per-step backoff ceiling, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_ms: 1, max_backoff_ms: 50 }
    }
}

impl RetryPolicy {
    /// The backoff after failed attempt `attempt` (0-based).
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms)
    }
}

/// The standard-library [`Writer`] with the ambient fault plan applied:
/// each operation consults [`crate::io_fault`] for its site and attempt.
/// An injected transient write failure first writes a **truncated
/// prefix** of the payload (simulating a kill mid-`write`), then errors
/// with [`ErrorKind::Interrupted`](io::ErrorKind).
#[derive(Debug)]
pub struct FaultWriter<'a> {
    site: &'a str,
    attempt: u64,
}

impl<'a> FaultWriter<'a> {
    /// A writer consulting the fault plan at `site`.
    #[must_use]
    pub fn new(site: &'a str) -> Self {
        Self { site, attempt: 0 }
    }
}

impl Writer for FaultWriter<'_> {
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let attempt = self.attempt;
        self.attempt += 1;
        match crate::io_fault(self.site, attempt) {
            Some(IoFault::Transient) => {
                // Kill mid-write: half the payload lands, then the error.
                let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("bevra-faults: injected transient I/O error at {} (attempt {attempt})", self.site),
                ))
            }
            Some(IoFault::Permanent) => {
                let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                Err(io::Error::other(format!(
                    "bevra-faults: injected permanent I/O error at {}",
                    self.site
                )))
            }
            None => std::fs::write(path, bytes),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// What one [`atomic_write`] did, for logs and chaos accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Write attempts performed (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff accounted by the clock, in milliseconds.
    pub backoff_ms: u64,
}

/// Temp-file path used by [`atomic_write`] for `path`: a sibling named
/// `<file>.tmp` (same directory, so the final rename never crosses a
/// filesystem boundary).
#[must_use]
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` atomically (write temp, rename over), with
/// bounded retry on transient errors, through an explicit writer and
/// clock. On failure the temp file is removed and the previous contents
/// of `path` (if any) are untouched.
///
/// Transient = [`ErrorKind::Interrupted`](io::ErrorKind) or
/// [`ErrorKind::WouldBlock`](io::ErrorKind); anything else aborts
/// immediately.
///
/// # Errors
///
/// The last write error after retries are exhausted, or the rename
/// error.
pub fn atomic_write_with(
    writer: &mut dyn Writer,
    clock: &mut dyn Clock,
    policy: RetryPolicy,
    path: &Path,
    bytes: &[u8],
) -> io::Result<WriteOutcome> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = temp_path(path);
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts = 0;
    let result = loop {
        attempts += 1;
        match writer.write_file(&tmp, bytes) {
            Ok(()) => break Ok(()),
            Err(e)
                if attempts < max_attempts
                    && matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                    ) =>
            {
                clock.sleep_ms(policy.backoff_ms(attempts - 1));
            }
            Err(e) => break Err(e),
        }
    };
    match result {
        Ok(()) => {
            writer.rename(&tmp, path)?;
            Ok(WriteOutcome { attempts, backoff_ms: clock.total_ms() })
        }
        Err(e) => {
            // Never leave a truncated temp file behind a failed write.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// [`atomic_write_with`] using the ambient fault plan at `io/<site>`,
/// the default [`RetryPolicy`], and — when a fault plan is active — the
/// deterministic [`VirtualClock`] instead of real sleeps.
///
/// # Errors
///
/// As [`atomic_write_with`].
pub fn atomic_write(site: &str, path: &Path, bytes: &[u8]) -> io::Result<WriteOutcome> {
    let full_site = format!("io/{site}");
    let mut writer = FaultWriter::new(&full_site);
    let policy = RetryPolicy::default();
    if crate::active() {
        atomic_write_with(&mut writer, &mut VirtualClock::default(), policy, path, bytes)
    } else {
        atomic_write_with(&mut writer, &mut WallClock::default(), policy, path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, FaultKind, FaultPlan, FaultRule};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bevra-faults-io-{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_write_lands_and_removes_temp() {
        let d = tmpdir("clean");
        let p = d.join("a.json");
        let out = atomic_write("test/clean", &p, b"{\"v\":1}").unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"v\":1}");
        assert!(!temp_path(&p).exists());
    }

    #[test]
    fn transient_fault_retries_then_succeeds_without_sleeping() {
        let d = tmpdir("transient");
        let p = d.join("a.csv");
        std::fs::write(&p, b"old,complete").unwrap();
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoTransient, "io/test/tr").with_n(2));
        let _guard = install(plan);
        let out = atomic_write("test/tr", &p, b"new,complete").unwrap();
        assert_eq!(out.attempts, 3, "two injected failures then success");
        assert!(out.backoff_ms > 0, "backoff accounted on the virtual clock");
        assert_eq!(std::fs::read(&p).unwrap(), b"new,complete");
        assert!(!temp_path(&p).exists());
    }

    #[test]
    fn permanent_fault_leaves_old_artifact_complete() {
        let d = tmpdir("permanent");
        let p = d.join("fig.json");
        std::fs::write(&p, b"{\"old\": true}").unwrap();
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoPermanent, "io/test/perm"));
        let _guard = install(plan);
        let err = atomic_write("test/perm", &p, b"{\"new\": true}").unwrap_err();
        assert!(err.to_string().contains("injected permanent"));
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"old\": true}", "old artifact intact");
        assert!(!temp_path(&p).exists(), "no truncated temp left behind");
    }

    #[test]
    fn permanent_fault_on_fresh_path_leaves_nothing() {
        let d = tmpdir("fresh");
        let p = d.join("fresh.json");
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoPermanent, "io/test/fresh"));
        let _guard = install(plan);
        assert!(atomic_write("test/fresh", &p, b"data").is_err());
        assert!(!p.exists(), "failed first write must not create the file");
        assert!(!temp_path(&p).exists());
    }

    #[test]
    fn transient_fault_exhausting_retries_fails_cleanly() {
        let d = tmpdir("exhaust");
        let p = d.join("x.json");
        std::fs::write(&p, b"v1").unwrap();
        // More failing attempts than the policy allows.
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoTransient, "io/test/ex").with_n(99));
        let _guard = install(plan);
        let err = atomic_write("test/ex", &p, b"v2").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert_eq!(std::fs::read(&p).unwrap(), b"v1");
        assert!(!temp_path(&p).exists());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy { max_attempts: 8, base_backoff_ms: 2, max_backoff_ms: 9 };
        assert_eq!(p.backoff_ms(0), 2);
        assert_eq!(p.backoff_ms(1), 4);
        assert_eq!(p.backoff_ms(2), 8);
        assert_eq!(p.backoff_ms(3), 9, "capped");
        assert_eq!(p.backoff_ms(63), 9, "shift saturates instead of overflowing");
    }

    #[test]
    fn temp_path_is_sibling() {
        let p = Path::new("/some/dir/fig2.json");
        assert_eq!(temp_path(p), Path::new("/some/dir/fig2.json.tmp"));
    }
}
