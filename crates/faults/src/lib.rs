//! Deterministic fault injection for the bevra workspace.
//!
//! The paper's §5.2 retrying extension models a system in which failures
//! are *expected* — blocked reservations are retried with a per-attempt
//! penalty. This crate makes the workspace's own failure paths equally
//! first-class: seeded, reproducible fault plans that inject worker
//! panics, NaN/Inf corruption, forced numerical non-convergence, and
//! transient/permanent I/O errors at named sites compiled into the other
//! crates, so the degradation machinery (panic-isolated sweeps,
//! `SweepHealth` accounting, atomic artifact persistence, the simulator
//! watchdog) is tested rather than trusted.
//!
//! # Gating
//!
//! Injection is controlled by the `BEVRA_FAULTS` environment variable
//! (see [`plan`] for the grammar) or programmatically via [`install`].
//! With no plan active every query is one relaxed atomic load returning
//! "no fault" — the instrumented hot paths stay bitwise-identical to
//! uninstrumented code, which the workspace's determinism and golden
//! corpus tests assert.
//!
//! # Concurrency
//!
//! The plan registry is process-global. [`install`] serializes callers on
//! an internal lock and returns an RAII [`InstallGuard`]; tests that
//! inject faults therefore never interleave two plans. Reading the
//! active plan is lock-free in the common (inactive) case.
//!
//! ```
//! use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
//!
//! let plan = FaultPlan::seeded(7)
//!     .rule(FaultRule::at_key(FaultKind::Nan, "doc/site", 3));
//! let _guard = install(plan);
//! assert!(bevra_faults::corrupt_f64("doc/site", 3, 1.0).is_nan());
//! assert_eq!(bevra_faults::corrupt_f64("doc/site", 4, 1.0), 1.0);
//! ```

#![deny(missing_docs)]

pub mod io;
pub mod plan;

pub use io::{atomic_write, atomic_write_with, Clock, RetryPolicy, VirtualClock, WallClock, Writer};
pub use plan::{FaultKind, FaultPlan, FaultRule};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Environment variable holding the fault plan (see [`plan`] for the
/// grammar). Read once, on the first injection query.
pub const FAULTS_ENV: &str = "BEVRA_FAULTS";

const STATE_UNINIT: u8 = u8::MAX;
const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;

/// Fast-path gate: `STATE_ON` iff a non-empty plan is active.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// The active plan (`None` when injection is off).
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Serializes [`install`] callers so two fault plans never overlap.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock_plan() -> MutexGuard<'static, Option<Arc<FaultPlan>>> {
    // A panic while holding the plan lock leaves valid contents (we only
    // ever store complete Options), so poisoning is recoverable.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether any fault plan is active — one relaxed atomic load after
/// first-use initialization from [`FAULTS_ENV`].
#[inline]
#[must_use]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Cold path of [`active`]: parse [`FAULTS_ENV`] once. A malformed plan
/// is reported on stderr and treated as absent — a typo in the variable
/// must degrade to a clean run, not a half-injected one.
#[cold]
fn init_from_env() -> bool {
    let parsed = match std::env::var(FAULTS_ENV) {
        Ok(text) => match FaultPlan::parse(&text) {
            Ok(p) if !p.rules.is_empty() => Some(p),
            Ok(_) => None,
            Err(e) => {
                eprintln!("bevra-faults: ignoring malformed {FAULTS_ENV}: {e}");
                None
            }
        },
        Err(_) => None,
    };
    let on = parsed.is_some();
    {
        let mut slot = lock_plan();
        // A racing install() wins: only fill from env while uninitialized.
        if STATE.load(Ordering::Relaxed) == STATE_UNINIT {
            *slot = parsed.map(Arc::new);
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
        }
    }
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// The currently active plan, if any.
#[must_use]
pub fn current_plan() -> Option<Arc<FaultPlan>> {
    if !active() {
        return None;
    }
    lock_plan().clone()
}

/// RAII handle of a programmatic [`install`]: dropping it deactivates
/// injection and releases the installation lock.
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        *lock_plan() = None;
        STATE.store(STATE_OFF, Ordering::Relaxed);
    }
}

/// Activate `plan` for the lifetime of the returned guard. Blocks until
/// any previously installed plan is dropped, so concurrent tests
/// serialize instead of corrupting each other's injections. While a
/// guard is live the environment plan (if any) is shadowed; after the
/// guard drops, injection is off for the rest of the process.
#[must_use]
pub fn install(plan: FaultPlan) -> InstallGuard {
    let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_plan() = Some(Arc::new(plan));
    STATE.store(STATE_ON, Ordering::Relaxed);
    InstallGuard { _lock: lock }
}

/// Marker prefix of every injected panic message, so panic hooks and
/// assertions can tell injected faults from genuine bugs.
pub const PANIC_MARKER: &str = "bevra-faults: injected panic";

/// Observer invoked synchronously (on the querying thread) every time a
/// fault rule actually trips: `(kind, site, key)`. The flight recorder in
/// `bevra-obs` installs one so blackboxes capture the exact injection
/// sequence; with no observer registered the trip path pays one
/// `OnceLock::get`. Never invoked on the no-fault fast path.
pub type TripObserver = fn(FaultKind, &str, u64);

static TRIP_OBSERVER: OnceLock<TripObserver> = OnceLock::new();

/// Register the process-wide [`TripObserver`]. The first caller wins;
/// later calls are ignored and return `false`. The observer must not
/// panic and must not query fault sites (it runs inside them).
pub fn set_trip_observer(observer: TripObserver) -> bool {
    TRIP_OBSERVER.set(observer).is_ok()
}

#[cold]
fn notify_trip(kind: FaultKind, site: &str, key: u64) {
    if let Some(obs) = TRIP_OBSERVER.get() {
        obs(kind, site, key);
    }
}

/// Panic if a [`FaultKind::Panic`] rule trips at `(site, key)`. The
/// message starts with [`PANIC_MARKER`].
#[inline]
pub fn panic_point(site: &str, key: u64) {
    if active() {
        if let Some(plan) = current_plan() {
            if plan.trips(FaultKind::Panic, site, key) {
                notify_trip(FaultKind::Panic, site, key);
                panic!("{PANIC_MARKER} at {site}[{key}]");
            }
        }
    }
}

/// Attempt-aware variant of [`panic_point`] for supervised call sites:
/// panics only while `attempt` is below the matching rule's `n` parameter
/// (default: every attempt, i.e. a *permanent* fault). This makes panic
/// faults symmetric with [`io_fault`]'s transient/permanent split — a rule
/// like `panic:engine/point@p=0.3,n=1` fails each tripped point's first
/// attempt and lets the policy-driven retry rescue it, while a rule
/// without `n` keeps the point dead through every retry.
#[inline]
pub fn panic_point_attempt(site: &str, key: u64, attempt: u64) {
    if active() {
        if let Some(plan) = current_plan() {
            if plan.trips(FaultKind::Panic, site, key)
                && attempt < plan.count_for(FaultKind::Panic, site).unwrap_or(u64::MAX)
            {
                notify_trip(FaultKind::Panic, site, key);
                panic!("{PANIC_MARKER} at {site}[{key}] (attempt {attempt})");
            }
        }
    }
}

/// Pass `value` through the corruption sites: `NaN` if a
/// [`FaultKind::Nan`] rule trips at `(site, key)`, `+∞` for
/// [`FaultKind::Inf`], otherwise `value` untouched (bit-exact).
#[inline]
#[must_use]
pub fn corrupt_f64(site: &str, key: u64, value: f64) -> f64 {
    if !active() {
        return value;
    }
    match current_plan() {
        Some(plan) if plan.trips(FaultKind::Nan, site, key) => {
            notify_trip(FaultKind::Nan, site, key);
            f64::NAN
        }
        Some(plan) if plan.trips(FaultKind::Inf, site, key) => {
            notify_trip(FaultKind::Inf, site, key);
            f64::INFINITY
        }
        _ => value,
    }
}

/// Whether a [`FaultKind::NumErr`] rule trips at `(site, key)` — callers
/// in `bevra-num` return `NumError::MaxIterations` when it does.
#[inline]
#[must_use]
pub fn forced_numerr(site: &str, key: u64) -> bool {
    let tripped = active()
        && current_plan().is_some_and(|p| p.trips(FaultKind::NumErr, site, key));
    if tripped {
        notify_trip(FaultKind::NumErr, site, key);
    }
    tripped
}

/// An injected I/O failure mode, consumed by [`io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// This attempt fails; a later attempt may succeed.
    Transient,
    /// Every attempt fails.
    Permanent,
}

/// The injected failure (if any) for I/O `attempt` (0-based) at `site`.
///
/// A [`FaultKind::IoPermanent`] rule fails every attempt. A
/// [`FaultKind::IoTransient`] rule fails attempts `0..n` (its `n`
/// parameter, default 1) and lets later attempts through, modelling a
/// glitch that a bounded retry rides out.
#[inline]
#[must_use]
pub fn io_fault(site: &str, attempt: u64) -> Option<IoFault> {
    if !active() {
        return None;
    }
    let plan = current_plan()?;
    if plan.trips(FaultKind::IoPermanent, site, attempt) {
        notify_trip(FaultKind::IoPermanent, site, attempt);
        return Some(IoFault::Permanent);
    }
    if plan.trips(FaultKind::IoTransient, site, attempt) {
        let failing = plan.count_for(FaultKind::IoTransient, site).unwrap_or(1);
        if attempt < failing {
            notify_trip(FaultKind::IoTransient, site, attempt);
            return Some(IoFault::Transient);
        }
    }
    None
}

/// The budget override (a [`FaultKind::Budget`] rule's `n`) for `site`,
/// if any — e.g. the simulator watchdog consults `sim/budget`.
#[inline]
#[must_use]
pub fn budget_override(site: &str) -> Option<u64> {
    if !active() {
        return None;
    }
    current_plan()?.count_for(FaultKind::Budget, site)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_queries_are_passthrough() {
        // No plan installed by this test; the env is unset in the test
        // environment, so everything passes through.
        if active() {
            return; // another harness set BEVRA_FAULTS; skip
        }
        assert_eq!(corrupt_f64("x", 0, 2.5).to_bits(), 2.5f64.to_bits());
        assert!(!forced_numerr("x", 0));
        assert!(io_fault("x", 0).is_none());
        assert!(budget_override("x").is_none());
        panic_point("x", 0); // must not panic
    }

    #[test]
    fn install_guard_scopes_injection() {
        {
            let plan = FaultPlan::seeded(1)
                .rule(FaultRule::always(FaultKind::Inf, "g/inf"))
                .rule(FaultRule::always(FaultKind::NumErr, "g/num"))
                .rule(FaultRule::always(FaultKind::Budget, "g/budget").with_n(12));
            let _guard = install(plan);
            assert!(active());
            assert_eq!(corrupt_f64("g/inf", 9, 1.0), f64::INFINITY);
            assert!(forced_numerr("g/num", 0));
            assert_eq!(budget_override("g/budget"), Some(12));
            assert!(!forced_numerr("g/other", 0), "site must match");
        }
        assert!(!active(), "guard drop deactivates injection");
        assert_eq!(corrupt_f64("g/inf", 9, 1.0), 1.0);
    }

    #[test]
    fn panic_point_panics_with_marker() {
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "p/site", 2));
        let _guard = install(plan);
        let caught = std::panic::catch_unwind(|| panic_point("p/site", 2))
            .expect_err("must panic at the keyed point");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains(PANIC_MARKER), "message: {msg}");
        panic_point("p/site", 1); // other keys pass
    }

    #[test]
    fn panic_point_attempt_is_transient_under_n() {
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "p/retry", 5).with_n(2));
        let _guard = install(plan);
        for attempt in 0..2 {
            assert!(
                std::panic::catch_unwind(|| panic_point_attempt("p/retry", 5, attempt)).is_err(),
                "attempt {attempt} must still panic"
            );
        }
        panic_point_attempt("p/retry", 5, 2); // attempt n recovers
        panic_point_attempt("p/retry", 4, 0); // other keys never trip
    }

    #[test]
    fn panic_point_attempt_without_n_is_permanent() {
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "p/perm", 1));
        let _guard = install(plan);
        for attempt in 0..6 {
            assert!(
                std::panic::catch_unwind(|| panic_point_attempt("p/perm", 1, attempt)).is_err(),
                "attempt {attempt} must panic without an n bound"
            );
        }
    }

    #[test]
    fn transient_io_fails_then_recovers() {
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoTransient, "io/x").with_n(2));
        let _guard = install(plan);
        assert_eq!(io_fault("io/x/file", 0), Some(IoFault::Transient));
        assert_eq!(io_fault("io/x/file", 1), Some(IoFault::Transient));
        assert_eq!(io_fault("io/x/file", 2), None, "attempt n succeeds");
        assert_eq!(io_fault("io/y", 0), None);
    }

    #[test]
    fn permanent_io_never_recovers() {
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::always(FaultKind::IoPermanent, "io/p"));
        let _guard = install(plan);
        for attempt in 0..8 {
            assert_eq!(io_fault("io/p", attempt), Some(IoFault::Permanent));
        }
    }
}
