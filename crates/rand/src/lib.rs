//! Offline stand-in for the subset of the crates.io `rand` API this
//! workspace uses.
//!
//! The build environment has no access to a crates.io mirror, so the real
//! `rand` crate cannot be vendored. This package provides the same item
//! paths (`rand::rngs::StdRng`, [`SeedableRng`], [`RngExt`]) backed by a
//! seeded **xoshiro256++** generator, so every caller keeps the exact
//! `use` statements it would have against the real crate.
//!
//! Numerical streams differ from upstream `rand`'s `StdRng` (which is
//! ChaCha-based); nothing in this workspace depends on the specific
//! stream, only on determinism under a fixed seed — which this
//! implementation guarantees.

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    ///
    /// Equal seeds give bit-identical streams; distinct seeds give
    /// (overwhelmingly likely) disjoint streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Typed sampling helpers layered over any [`RngCore`].
///
/// This mirrors the ergonomics of upstream `rand`'s `Rng` extension
/// trait: `rng.random::<f64>()` and `rng.random_range(0..n)`.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` over its standard domain
    /// (`[0, 1)` for floats, full range for integers, fair coin for
    /// `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable uniformly over a standard domain by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types supporting unbiased uniform range sampling.
pub trait UniformInt: Sized {
    /// Draw uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

/// Unbiased `[0, span)` by rejection on the widening multiply (Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: the largest multiple of `span` not exceeding 2^64.
    let zone = span.wrapping_neg() % span; // (2^64 − span) mod span
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32);

/// Derive the seed of an independent child stream from a master seed and a
/// stream index.
///
/// Uses one round of SplitMix64 over `master ⊕ golden·(stream+1)`, the same
/// finalizer that expands seeds into generator state, so child streams are
/// pairwise decorrelated even for adjacent indices. The property-test
/// runner in `bevra-check` seeds every case as
/// `derive_seed(master, case_index)`: any failing case can be replayed in
/// isolation from its recorded child seed without regenerating the
/// preceding cases.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: **xoshiro256++**
    /// (Blackman & Vigna), state expanded from the seed by SplitMix64.
    ///
    /// Fast, 256-bit state, passes BigCrush; not cryptographic — exactly
    /// what a deterministic simulator wants.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream seeds the four state words; the all-zero
            // state is unreachable because SplitMix64 is a bijection
            // producing four distinct nonzero-with-probability-1 words.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<f64> = (0..32).map(|_| a.random::<f64>()).collect();
        let vb: Vec<f64> = (0..32).map(|_| b.random::<f64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.random::<f64>());
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_cover_uniformly_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            let i = rng.random_range(0..5usize);
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(3..3usize);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a = super::derive_seed(42, 0);
        assert_eq!(a, super::derive_seed(42, 0));
        // Adjacent streams and adjacent masters all diverge.
        assert_ne!(a, super::derive_seed(42, 1));
        assert_ne!(a, super::derive_seed(43, 0));
        // Child streams from adjacent indices are decorrelated, not shifted
        // copies: their first draws differ.
        let mut r0 = StdRng::seed_from_u64(super::derive_seed(7, 10));
        let mut r1 = StdRng::seed_from_u64(super::derive_seed(7, 11));
        assert_ne!(r0.random::<u64>(), r1.random::<u64>());
    }
}
