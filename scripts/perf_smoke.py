#!/usr/bin/env python3
"""Perf smoke gate: diff a fresh BENCH_sweep.json against the committed
BENCH_baseline.json.

The benchmark harness (`cargo bench -p bevra-bench --bench engine`) writes
`BENCH_sweep.json` at the repo root in the `bevra-bench-v1` schema (see
EXPERIMENTS.md § "Benchmark artifact schema"). This script fails if any
benchmark shared by both files regressed by more than THRESHOLD× in median
ns — a deliberately loose gate: CI runners differ from the machine that
recorded the baseline, so the gate only catches order-of-magnitude
regressions (a kernel silently falling off its vectorized path, the
persistent cache no longer hitting), not percent-level noise.

Usage: perf_smoke.py [fresh] [baseline] [--threshold X]
Defaults: BENCH_sweep.json BENCH_baseline.json --threshold 3.0
"""

import argparse
import json
import sys

# The four canonical kernel rows; their absence means the bench harness is
# broken (or the bench was renamed without updating the baseline), which
# must fail the gate rather than silently shrink its coverage.
REQUIRED = (
    "kernel_sweep_serial",
    "kernel_sweep_batched",
    "kernel_sweep_parallel",
    "kernel_sweep_warm_cache",
)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bevra-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows = {r["name"]: r for r in doc["results"]}
    if not rows:
        sys.exit(f"{path}: no results")
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", nargs="?", default="BENCH_sweep.json")
    ap.add_argument("baseline", nargs="?", default="BENCH_baseline.json")
    ap.add_argument("--threshold", type=float, default=3.0)
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)

    missing = [name for name in REQUIRED if name not in fresh]
    if missing:
        sys.exit(f"{args.fresh}: missing required benches: {', '.join(missing)}")

    shared = sorted(set(fresh) & set(base))
    if not shared:
        sys.exit("no benchmarks shared between fresh run and baseline")

    failures = []
    print(f"{'benchmark':40} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in shared:
        b = base[name]["median_ns"]
        f = fresh[name]["median_ns"]
        ratio = f / b if b > 0 else float("inf")
        flag = "  REGRESSED" if ratio > args.threshold else ""
        print(f"{name:40} {b / 1e6:10.2f}ms {f / 1e6:10.2f}ms {ratio:6.2f}x{flag}")
        if ratio > args.threshold:
            failures.append((name, ratio))

    if failures:
        worst = ", ".join(f"{n} ({r:.1f}x)" for n, r in failures)
        sys.exit(f"perf smoke FAILED (>{args.threshold}x median regression): {worst}")
    print(f"perf smoke ok: {len(shared)} benches within {args.threshold}x of baseline")


if __name__ == "__main__":
    main()
