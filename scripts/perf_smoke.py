#!/usr/bin/env python3
"""Perf smoke gate: diff a fresh BENCH_sweep.json against the committed
BENCH_baseline.json.

The benchmark harness (`cargo bench -p bevra-bench --bench engine`) writes
`BENCH_sweep.json` at the repo root in the `bevra-bench-v1` schema (see
EXPERIMENTS.md § "Benchmark artifact schema"). This script fails if any
benchmark shared by both files regressed by more than THRESHOLD× in median
ns — a deliberately loose gate: CI runners differ from the machine that
recorded the baseline, so the gate only catches order-of-magnitude
regressions (a kernel silently falling off its vectorized path, the
persistent cache no longer hitting), not percent-level noise.

`--require NAME` (repeatable) replaces the default required-row set, so a
job that only ran one bench target (e.g. the sim-scale job running
`--bench sim`) can gate on its own rows without demanding the kernel
rows. `--min-speedup FAST:SLOW:RATIO` (repeatable) additionally asserts
an *absolute* architecture claim within the fresh run: bench FAST must be
at least RATIO× faster (by median ns) than bench SLOW — used by the
sim-scale job to hold the timer-wheel/SoA loop to its ≥10× events/s
improvement over the legacy heap loop, and by the kernel job to hold the
fused B+R pass to its ≥1.5× claim over the unfused composition.

Rows may carry an optional `joules_per_sweep` field (null when the RAPL
probe was unavailable). It is printed when present and never gated —
energy varies across machines far more than wall time does.

Usage: perf_smoke.py [fresh] [baseline] [--threshold X]
                     [--require NAME ...] [--min-speedup FAST:SLOW:RATIO ...]
Defaults: BENCH_sweep.json BENCH_baseline.json --threshold 3.0
"""

import argparse
import json
import sys

# The four canonical kernel rows; their absence means the bench harness is
# broken (or the bench was renamed without updating the baseline), which
# must fail the gate rather than silently shrink its coverage.
REQUIRED = (
    "kernel_sweep_serial",
    "kernel_sweep_batched",
    "kernel_sweep_parallel",
    "kernel_sweep_warm_cache",
)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bevra-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows = {r["name"]: r for r in doc["results"]}
    if not rows:
        sys.exit(f"{path}: no results")
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", nargs="?", default="BENCH_sweep.json")
    ap.add_argument("baseline", nargs="?", default="BENCH_baseline.json")
    ap.add_argument("--threshold", type=float, default=3.0)
    ap.add_argument("--require", action="append", default=None, metavar="NAME")
    ap.add_argument(
        "--min-speedup", action="append", default=[], metavar="FAST:SLOW:RATIO"
    )
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)

    required = tuple(args.require) if args.require else REQUIRED
    missing = [name for name in required if name not in fresh]
    if missing:
        sys.exit(f"{args.fresh}: missing required benches: {', '.join(missing)}")

    for spec in args.min_speedup:
        try:
            fast_name, slow_name, ratio_s = spec.split(":")
            want = float(ratio_s)
        except ValueError:
            sys.exit(f"bad --min-speedup spec {spec!r}, expected FAST:SLOW:RATIO")
        for name in (fast_name, slow_name):
            if name not in fresh:
                sys.exit(f"--min-speedup: {name} not in {args.fresh}")
        got = fresh[slow_name]["median_ns"] / max(fresh[fast_name]["median_ns"], 1e-9)
        status = "ok" if got >= want else "FAILED"
        print(f"speedup {fast_name} vs {slow_name}: {got:.1f}x (need {want:.1f}x) {status}")
        if got < want:
            sys.exit(
                f"perf smoke FAILED: {fast_name} is only {got:.1f}x faster than "
                f"{slow_name}, need {want:.1f}x"
            )

    shared = sorted(set(fresh) & set(base))
    if not shared:
        sys.exit("no benchmarks shared between fresh run and baseline")

    failures = []
    print(f"{'benchmark':40} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in shared:
        b = base[name]["median_ns"]
        f = fresh[name]["median_ns"]
        ratio = f / b if b > 0 else float("inf")
        flag = "  REGRESSED" if ratio > args.threshold else ""
        print(f"{name:40} {b / 1e6:10.2f}ms {f / 1e6:10.2f}ms {ratio:6.2f}x{flag}")
        if ratio > args.threshold:
            failures.append((name, ratio))

    energy = [
        (name, row["joules_per_sweep"])
        for name, row in sorted(fresh.items())
        if row.get("joules_per_sweep") is not None
    ]
    if energy:
        print("energy (informational, never gated):")
        for name, joules in energy:
            print(f"  {name:38} {joules:.4f} J/sweep")

    if failures:
        worst = ", ".join(f"{n} ({r:.1f}x)" for n, r in failures)
        sys.exit(f"perf smoke FAILED (>{args.threshold}x median regression): {worst}")
    print(f"perf smoke ok: {len(shared)} benches within {args.threshold}x of baseline")


if __name__ == "__main__":
    main()
