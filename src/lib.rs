//! # bevra — Best-Effort versus Reservations
//!
//! A complete Rust implementation of Breslau & Shenker,
//! *"Best-Effort versus Reservations: A Simple Comparative Analysis"*
//! (SIGCOMM 1998), plus the executable substrate the paper never had: a
//! flow-level simulator and a multi-link max-min network model.
//!
//! This facade crate re-exports the workspace members under stable module
//! names and provides a [`prelude`] for the common path. See `README.md`
//! for a tour and `DESIGN.md` for the full system inventory.
//!
//! ```
//! use bevra::prelude::*;
//!
//! // The paper's Figure 3 setting: exponential load, mean 100, rigid apps.
//! let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20);
//! let model = DiscreteModel::new(load, Rigid::unit());
//! let capacity = 200.0;
//! let b = model.best_effort(capacity);
//! let r = model.reservation(capacity);
//! assert!(r > b, "reservations always hold an edge");
//! let delta = bandwidth_gap(&model, capacity).unwrap();
//! assert!(delta > 100.0, "…and for this load it takes a LOT of extra \
//!                         best-effort bandwidth to close it: {delta}");
//! ```
//!
//! Dense sweeps (whole figures, welfare tables) should go through the
//! [`engine`]'s [`SweepEngine`](bevra_engine::SweepEngine), which memoizes
//! `k_max`/`B`/`R` and fans grids out over threads (`BEVRA_THREADS`
//! overrides the worker count) with bitwise-identical output:
//!
//! ```
//! use bevra::prelude::*;
//!
//! let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 16);
//! let engine = SweepEngine::new(DiscreteModel::new(load, AdaptiveExp::paper()));
//! let points = engine.sweep(&[50.0, 100.0, 200.0, 400.0]);
//! for p in &points {
//!     assert!(p.reservation >= p.best_effort, "R(C) ≥ B(C) at C = {}", p.capacity);
//! }
//! // δ and Δ both shrink as the link gets overprovisioned.
//! assert!(points[3].performance_gap < points[1].performance_gap);
//! assert!(points[3].bandwidth_gap < points[1].bandwidth_gap);
//! ```

/// Numerical substrate (root finding, quadrature, optimization, special
/// functions).
pub use bevra_num as num;

/// Utility functions `π(b)` and the fixed-load model (§2).
pub use bevra_utility as utility;

/// Offered-load distributions and tabulation (§3.1).
pub use bevra_load as load;

/// The comparative analysis: discrete and continuum models, gaps, welfare,
/// sampling and retrying extensions (§3–§5).
pub use bevra_core as analysis;

/// Flow-level discrete-event simulator of the bottleneck link.
pub use bevra_sim as sim;

/// Multi-link max-min network substrate.
pub use bevra_net as net;

/// Figure regeneration, ASCII charts, CSV/JSON emission.
pub use bevra_report as report;

/// Parallel, memoized sweep engine for dense capacity/price grids.
pub use bevra_engine as engine;

/// Structured tracing, metrics, and exporters (`BEVRA_OBS=off|summary|trace`).
pub use bevra_obs as obs;

/// The items most programs need.
pub mod prelude {
    pub use bevra_core::{
        bandwidth_gap, equalizing_price_ratio, optimal_welfare, performance_gap, DiscreteModel,
        Kernel, KernelCapability, ParityClass, RetryModel, SampledValue, SamplingModel,
        SimdLevel,
    };
    pub use bevra_engine::{Architecture, ExecMode, SweepEngine, SweepPoint};
    pub use bevra_load::{
        flow_perspective, Algebraic, Geometric, LoadModel, Poisson, Tabulated, PAPER_MEAN_LOAD,
    };
    pub use bevra_sim::{Discipline, HoldingDist, MixedPoisson, RateMixing, SimConfig, Simulation};
    pub use bevra_utility::{AdaptiveExp, Ramp, Rigid, Utility};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_workspace_together() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 16);
        let model = DiscreteModel::new(load, AdaptiveExp::paper());
        assert!(model.reservation(20.0) >= model.best_effort(20.0));
    }
}
