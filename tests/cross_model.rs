//! Integration: the discrete and continuum models must agree where they
//! overlap, and core invariants must hold across load × utility pairs.

use bevra::analysis::continuum::ContinuumModel;
use bevra::analysis::{bandwidth_gap, performance_gap, DiscreteModel};
use bevra::load::{ExponentialDensity, Geometric, ParetoDensity, Poisson, Tabulated};
use bevra::utility::{AdaptiveExp, Ramp, Rigid};

/// Discrete geometric ↔ continuum exponential: same mean, same rigid
/// utility — the normalized curves should track each other within the
/// discretization error O(1/k̄).
#[test]
fn discrete_tracks_continuum_exponential_rigid() {
    let kbar = 100.0;
    let discrete = DiscreteModel::new(
        Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 20),
        Rigid::unit(),
    );
    let continuum = ContinuumModel::new(ExponentialDensity::from_mean(kbar), Rigid::unit());
    for c in [50.0, 100.0, 200.0, 400.0] {
        let bd = discrete.best_effort(c);
        let bc = continuum.best_effort(c).unwrap();
        assert!((bd - bc).abs() < 0.02, "B at C={c}: discrete {bd} vs continuum {bc}");
        let rd = discrete.reservation(c);
        let rc = continuum.reservation(c).unwrap();
        assert!((rd - rc).abs() < 0.02, "R at C={c}: discrete {rd} vs continuum {rc}");
    }
}

/// Discrete algebraic ↔ continuum Pareto, compared in normalized capacity
/// units `C/k̄` (the continuum family cannot be mean-tuned).
#[test]
fn discrete_tracks_continuum_algebraic_shape() {
    let z = 3.0;
    let kbar = 100.0;
    let model = bevra::load::Algebraic::from_mean(z, kbar).unwrap();
    let discrete =
        DiscreteModel::new(Tabulated::from_model(&model, 1e-9, 1 << 21), Rigid::unit());
    let continuum = ContinuumModel::new(ParetoDensity::new(z), Rigid::unit());
    let kbar_cont = continuum.mean_load();
    // Compare the *relative* gaps at matched normalized capacities. The two
    // parameterizations differ in their heads (λ-shifted vs pure power law),
    // so only the tail regime (C ≳ 2k̄) is expected to align.
    for c_norm in [2.0, 4.0, 8.0] {
        let delta_d = performance_gap(&discrete, c_norm * kbar);
        let delta_c = continuum.performance_gap(c_norm * kbar_cont).unwrap();
        let ratio = delta_d / delta_c;
        assert!(
            (0.3..3.0).contains(&ratio),
            "normalized C={c_norm}: discrete δ {delta_d} vs continuum δ {delta_c}"
        );
    }
}

/// R ≥ B, both within [0, 1], for every family combination.
#[test]
fn domination_invariant_across_families() {
    let loads: Vec<Tabulated> = vec![
        Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 18),
        Tabulated::from_model(&Geometric::from_mean(50.0), 1e-12, 1 << 18),
        Tabulated::from_model(&bevra::load::Algebraic::from_mean(2.5, 50.0).unwrap(), 1e-7, 1 << 18),
    ];
    for load in loads {
        for utility in [0, 1, 2] {
            let check = |b: f64, r: f64, c: f64, name: &str| {
                assert!((0.0..=1.0 + 1e-9).contains(&b), "{name} B({c}) = {b}");
                assert!((0.0..=1.0 + 1e-9).contains(&r), "{name} R({c}) = {r}");
                assert!(r >= b - 1e-9, "{name} at C={c}: R {r} < B {b}");
            };
            for c in [10.0, 50.0, 150.0] {
                match utility {
                    0 => {
                        let m = DiscreteModel::new(load.clone(), Rigid::unit());
                        check(m.best_effort(c), m.reservation(c), c, "rigid");
                    }
                    1 => {
                        let m = DiscreteModel::new(load.clone(), AdaptiveExp::paper());
                        check(m.best_effort(c), m.reservation(c), c, "adaptive");
                    }
                    _ => {
                        let m = DiscreteModel::new(load.clone(), Ramp::new(0.5));
                        check(m.best_effort(c), m.reservation(c), c, "ramp");
                    }
                }
            }
        }
    }
}

/// The bandwidth gap must be monotone in the right direction per family:
/// growing for exponential+rigid, shrinking (past the peak) for
/// exponential+adaptive, ~linear for algebraic+rigid.
#[test]
fn gap_growth_regimes() {
    let kbar = 100.0;
    let geo = Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 20);
    let rigid = DiscreteModel::new(geo.clone(), Rigid::unit());
    let g2 = bandwidth_gap(&rigid, 2.0 * kbar).unwrap();
    let g6 = bandwidth_gap(&rigid, 6.0 * kbar).unwrap();
    assert!(g6 > g2, "exp rigid gap must grow: {g2} → {g6}");

    let adaptive = DiscreteModel::new(geo, AdaptiveExp::paper());
    let a1 = bandwidth_gap(&adaptive, kbar).unwrap();
    let a6 = bandwidth_gap(&adaptive, 6.0 * kbar).unwrap();
    assert!(a6 < a1, "exp adaptive gap must decay past its peak: {a1} → {a6}");

    let alg = Tabulated::from_model(
        &bevra::load::Algebraic::from_mean(3.0, kbar).unwrap(),
        1e-9,
        1 << 21,
    );
    let ar = DiscreteModel::new(alg, Rigid::unit());
    let l4 = bandwidth_gap(&ar, 4.0 * kbar).unwrap();
    let l8 = bandwidth_gap(&ar, 8.0 * kbar).unwrap();
    let slope = (l8 - l4) / (4.0 * kbar);
    assert!((slope - 1.0).abs() < 0.1, "alg rigid slope ≈ 1, got {slope}");
}

/// k_max consistency between the utility-level fixed-load analysis and the
/// model-level admission threshold.
#[test]
fn k_max_agrees_with_fixed_load_analysis() {
    let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 18);
    for c in [25.0, 50.0, 99.5] {
        let m = DiscreteModel::new(load.clone(), Rigid::unit());
        assert_eq!(m.k_max(c), Some(Rigid::unit().k_max(c)), "C={c}");
        let ma = DiscreteModel::new(load.clone(), AdaptiveExp::paper());
        let k = ma.k_max(c).unwrap();
        // Paper calibration: k_max(C) = C for the adaptive utility.
        assert!((k as f64 - c).abs() <= 1.0 + 0.02 * c, "adaptive k_max({c}) = {k}");
        // And the peak is a genuine argmax.
        let v = |kk: u64| bevra::utility::total_utility(&AdaptiveExp::paper(), kk, c);
        assert!(v(k) >= v(k + 1) && (k == 1 || v(k) >= v(k - 1)));
    }
}
