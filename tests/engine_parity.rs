//! Property test: the parallel sweep engine is **bitwise-identical** to
//! the serial path for `B(C)`, `R(C)`, `δ(C)`, and `Δ(C)` across all
//! three load families (Poisson, exponential/geometric, algebraic z = 3)
//! and both utility models, on randomized capacity grids.

use bevra::analysis::DiscreteModel;
use bevra::engine::{Architecture, ExecMode, SweepEngine};
use bevra::load::{Algebraic, Geometric, Poisson, Tabulated};
use bevra::utility::{AdaptiveExp, Rigid, Utility};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Random strictly-increasing capacity grid in `[k̄/20, 10k̄]`.
fn random_grid(rng: &mut StdRng, kbar: f64) -> Vec<f64> {
    let n = rng.random_range(6..28usize);
    let mut cs: Vec<f64> = (0..n)
        .map(|_| kbar / 20.0 + (10.0 * kbar - kbar / 20.0) * rng.random::<f64>())
        .collect();
    cs.sort_by(f64::total_cmp);
    cs.dedup();
    cs
}

fn assert_parity<U: Utility + Clone>(load: &Arc<Tabulated>, utility: U, cs: &[f64], tag: &str) {
    let serial =
        SweepEngine::serial(DiscreteModel::new(Arc::clone(load), utility.clone())).sweep(cs);
    for threads in [2, 5, 16] {
        let par = SweepEngine::with_mode(
            DiscreteModel::new(Arc::clone(load), utility.clone()),
            ExecMode::Parallel { threads },
        );
        for (s, p) in serial.iter().zip(par.sweep(cs)) {
            let c = s.capacity;
            assert_eq!(
                s.best_effort.to_bits(),
                p.best_effort.to_bits(),
                "{tag} threads={threads} C={c}: B differs"
            );
            assert_eq!(
                s.reservation.to_bits(),
                p.reservation.to_bits(),
                "{tag} threads={threads} C={c}: R differs"
            );
            assert_eq!(
                s.performance_gap.to_bits(),
                p.performance_gap.to_bits(),
                "{tag} threads={threads} C={c}: δ differs"
            );
            assert_eq!(
                s.bandwidth_gap.to_bits(),
                p.bandwidth_gap.to_bits(),
                "{tag} threads={threads} C={c}: Δ differs"
            );
        }
        // The welfare tables must agree bitwise too (same grid, same sums).
        let kbar = load.mean();
        let sv_s = SweepEngine::serial(DiscreteModel::new(Arc::clone(load), utility.clone()))
            .value_table(Architecture::Reservation, kbar, 100.0 * kbar, 64);
        let sv_p = par.value_table(Architecture::Reservation, kbar, 100.0 * kbar, 64);
        for c in cs {
            assert_eq!(
                sv_s.value(*c).to_bits(),
                sv_p.value(*c).to_bits(),
                "{tag} threads={threads} C={c}: V_R differs"
            );
        }
    }
}

#[test]
fn parallel_matches_serial_poisson() {
    let mut rng = StdRng::seed_from_u64(0xe71);
    let load = Arc::new(Tabulated::from_model(&Poisson::new(40.0), 1e-12, 1 << 14));
    for round in 0..4 {
        let cs = random_grid(&mut rng, 40.0);
        assert_parity(&load, Rigid::unit(), &cs, &format!("poisson/rigid #{round}"));
        assert_parity(&load, AdaptiveExp::paper(), &cs, &format!("poisson/adaptive #{round}"));
    }
}

#[test]
fn parallel_matches_serial_exponential() {
    let mut rng = StdRng::seed_from_u64(0xe72);
    let load = Arc::new(Tabulated::from_model(&Geometric::from_mean(40.0), 1e-12, 1 << 14));
    for round in 0..4 {
        let cs = random_grid(&mut rng, 40.0);
        assert_parity(&load, Rigid::unit(), &cs, &format!("exp/rigid #{round}"));
        assert_parity(&load, AdaptiveExp::paper(), &cs, &format!("exp/adaptive #{round}"));
    }
}

#[test]
fn parallel_matches_serial_algebraic() {
    let mut rng = StdRng::seed_from_u64(0xe73);
    let model = Algebraic::from_mean(3.0, 40.0).expect("calibration");
    let load = Arc::new(Tabulated::from_model(&model, 1e-8, 1 << 14));
    for round in 0..2 {
        let cs = random_grid(&mut rng, 40.0);
        assert_parity(&load, Rigid::unit(), &cs, &format!("alg/rigid #{round}"));
        assert_parity(&load, AdaptiveExp::paper(), &cs, &format!("alg/adaptive #{round}"));
    }
}
