//! Integration: the flow-level simulator must reproduce the analytical
//! model — occupancy families, utilities, and blocking.

use bevra::analysis::DiscreteModel;
use bevra::load::{Poisson, Tabulated};
use bevra::prelude::*;
use std::sync::Arc;

fn run(cfg: SimConfig) -> bevra::sim::SimReport {
    Simulation::new(cfg).run()
}

fn base(capacity: f64, discipline: Discipline, mixing: RateMixing, seed: u64) -> SimConfig {
    SimConfig {
        capacity,
        discipline,
        arrivals: MixedPoisson::new(30.0, mixing, 60.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 200.0,
        horizon: 15_000.0,
        seed,
        max_events: None,
    }
}

/// Fixed-rate arrivals: occupancy must be Poisson(offered load) — matched
/// against the ideal distribution with a chi-square-ish sup-norm check.
#[test]
fn occupancy_matches_ideal_poisson() {
    let rep = run(base(60.0, Discipline::BestEffort, RateMixing::Fixed, 1));
    let occ = rep.occupancy();
    let ideal = Poisson::new(30.0);
    use bevra::load::LoadModel;
    for k in 10..50u64 {
        let diff = (occ.pmf(k) - ideal.pmf(k)).abs();
        assert!(diff < 0.012, "pmf({k}): sim {} vs ideal {}", occ.pmf(k), ideal.pmf(k));
    }
}

/// Exponential mixing: occupancy variance must blow past the Poisson value
/// toward the geometric's k̄(k̄+1).
#[test]
fn exponential_mixing_inflates_variance() {
    let rep = run(base(200.0, Discipline::BestEffort, RateMixing::Exponential, 2));
    let occ = rep.occupancy();
    assert!(occ.variance() > 8.0 * occ.mean(), "var {} vs mean {}", occ.variance(), occ.mean());
}

/// The simulator's measured best-effort utility must match the analytical
/// B(C) computed from the simulator's own empirical occupancy (PASTA).
#[test]
fn measured_utility_matches_model_on_empirical_load() {
    for mixing in [RateMixing::Fixed, RateMixing::Exponential] {
        let rep = run(base(45.0, Discipline::BestEffort, mixing, 3));
        let model = DiscreteModel::new(rep.occupancy(), AdaptiveExp::paper());
        let predicted = model.best_effort(45.0);
        let measured = rep.utility_at_admission.mean();
        assert!(
            (measured - predicted).abs() < 0.01,
            "{mixing:?}: sim {measured} vs model {predicted}"
        );
    }
}

/// Reservation runs: measured blocking must match the Erlang-style analytic
/// blocking of the truncated occupancy, and admitted utility must beat
/// best-effort in overload.
#[test]
fn reservation_blocking_and_utility() {
    let kmax = 32u64;
    let rv = run(base(
        32.0,
        Discipline::Reservation { k_max: kmax, retry: None },
        RateMixing::Fixed,
        4,
    ));
    // M/M/k_max/k_max with offered 30 erlangs: Erlang-B gives ~0.08.
    let blocking = rv.blocking_rate();
    assert!((0.02..0.2).contains(&blocking), "blocking {blocking}");
    // Occupancy never exceeds the threshold.
    assert!(rv.occupancy().len() as u64 <= kmax + 1);

    let be = run(base(32.0, Discipline::BestEffort, RateMixing::Fixed, 4));
    // Rigid flows on the same overloaded link: reservations win.
    let rv_rigid = run(SimConfig {
        utility: Arc::new(Rigid::unit()),
        ..base(32.0, Discipline::Reservation { k_max: kmax, retry: None }, RateMixing::Fixed, 5)
    });
    let be_rigid = run(SimConfig {
        utility: Arc::new(Rigid::unit()),
        ..base(32.0, Discipline::BestEffort, RateMixing::Fixed, 5)
    });
    assert!(
        rv_rigid.utility_at_admission.mean() > be_rigid.utility_at_admission.mean(),
        "rigid: rsv {} vs be {}",
        rv_rigid.utility_at_admission.mean(),
        be_rigid.utility_at_admission.mean()
    );
    // Sanity: adaptive BE stays positive under the same overload.
    assert!(be.utility_at_admission.mean() > 0.3);
}

/// Admission-controlled M/M/c/c runs must reproduce the Erlang-B blocking
/// formula — the independent century-old closed form for this system.
#[test]
fn reservation_blocking_matches_erlang_b() {
    for (servers, offered) in [(32u64, 30.0), (40, 30.0), (25, 30.0)] {
        let mut cfg = base(
            servers as f64,
            Discipline::Reservation { k_max: servers, retry: None },
            RateMixing::Fixed,
            11,
        );
        cfg.arrivals = MixedPoisson::fixed(offered);
        let rep = run(cfg);
        let predicted = bevra::num::erlang_b(servers, offered);
        assert!(
            (rep.blocking_rate() - predicted).abs() < 0.012 + 0.05 * predicted,
            "c={servers}, a={offered}: sim {} vs Erlang-B {predicted}",
            rep.blocking_rate()
        );
    }
}

/// Retries shift lost flows into delayed admissions, and each retry costs
/// the configured penalty.
#[test]
fn retries_trade_loss_for_penalty() {
    let kmax = 31u64;
    let no_retry = run(base(
        31.0,
        Discipline::Reservation { k_max: kmax, retry: None },
        RateMixing::Fixed,
        6,
    ));
    let with_retry = run(base(
        31.0,
        Discipline::Reservation {
            k_max: kmax,
            retry: Some(bevra::sim::RetryPolicy::new(8, 2.0, 0.05)),
        },
        RateMixing::Fixed,
        6,
    ));
    let lost_frac = |r: &bevra::sim::SimReport| {
        r.lost as f64 / (r.completed + r.lost).max(1) as f64
    };
    assert!(
        lost_frac(&with_retry) < 0.5 * lost_frac(&no_retry),
        "retries must rescue most blocked flows: {} vs {}",
        lost_frac(&with_retry),
        lost_frac(&no_retry)
    );
    assert!(with_retry.retries > 0);
}

/// Deterministic replay across the whole pipeline.
#[test]
fn full_pipeline_is_deterministic() {
    let a = run(base(40.0, Discipline::BestEffort, RateMixing::Exponential, 99));
    let b = run(base(40.0, Discipline::BestEffort, RateMixing::Exponential, 99));
    assert_eq!(a.completed, b.completed);
    assert!((a.utility_time_avg.mean() - b.utility_time_avg.mean()).abs() == 0.0);
    let occ_a = a.occupancy();
    let occ_b = b.occupancy();
    for k in 0..occ_a.len() as u64 {
        assert_eq!(occ_a.pmf(k), occ_b.pmf(k));
    }
}

/// PASTA at scale: the rearchitected event loop must keep reproducing the
/// analytical model as the offered load climbs three decades,
/// k̄ ∈ {10³, 10⁴, 10⁵} — the regime the timer wheel and SoA flow table
/// exist for. Two CLT-banded checks per decade, both at 8σ so a failure
/// is a defect, not noise:
///
/// * **Ergodicity**: the time-weighted census mean must hit k̄. For
///   M/M/∞ occupancy the autocovariance is `k̄·e^{−|t|/τ}`, so the
///   time-average over a window `T` has variance `≈ 2k̄τ/T` — the band is
///   `8·√(2k̄τ/T)`.
/// * **PASTA sampling**: the arrival-sampled mean utility must equal the
///   model's `B(C)` evaluated on the run's *own* empirical occupancy.
///   Conditional on the occupancy path, Poisson arrival instants sample
///   the path's marginal independently, so the gap between the
///   arrival-weighted and time-weighted averages is sampling noise with
///   variance `Var(u)/N` (taken from the run's own Welford accumulator)
///   plus an `O(1/k̄)` systematic: an arriving flow's share counts the
///   flow itself (`C/(k+1)` against the state `k` it Poisson-sampled),
///   so the measured mean sits a slope-sized `1/k̄` term below the
///   census prediction. The band is `8·√(Var(u)/N) + 4/k̄` — at k̄ = 10⁵
///   that still pins the gap to ~5·10⁻⁵ absolute.
///
/// Capacity sits at `0.8·k̄` so the per-flow share stays in the utility's
/// steep region (`u(0.8) ≈ 0.36` for the paper's κ) and any occupancy
/// distortion shows up in the utility, not in a saturated flat spot.
#[test]
fn pasta_holds_across_three_decades_of_scale() {
    for (mean_k, horizon) in [(1e3, 115.0), (1e4, 65.0), (1e5, 40.0)] {
        let warmup = 15.0;
        let cfg = SimConfig {
            capacity: 0.8 * mean_k,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::fixed(mean_k),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup,
            horizon,
            seed: 0x5CA1E + mean_k as u64,
            max_events: None,
        };
        let rep = run(cfg);
        let window = horizon - warmup;

        let occ = rep.occupancy();
        let census_band = 8.0 * (2.0 * mean_k / window).sqrt();
        assert!(
            (occ.mean() - mean_k).abs() < census_band,
            "k̄={mean_k}: census mean {} is {:+.1}σ off",
            occ.mean(),
            (occ.mean() - mean_k) / (census_band / 8.0)
        );

        let model = DiscreteModel::new(occ, AdaptiveExp::paper());
        let predicted = model.best_effort(cfg_capacity(mean_k));
        let measured = rep.utility_at_admission.mean();
        let n = rep.utility_at_admission.count() as f64;
        let pasta_band = 8.0 * (rep.utility_at_admission.variance() / n).sqrt() + 4.0 / mean_k;
        assert!(
            (measured - predicted).abs() < pasta_band,
            "k̄={mean_k}: PASTA gap {:+.2e} exceeds 8σ = {pasta_band:.2e} \
             (sim {measured} vs model {predicted}, N={n})",
            measured - predicted
        );

        // Top of the ladder: cross-check against closed forms. At
        // k̄ = 10⁵ the Poisson occupancy concentrates (CV = k̄^{−1/2} ≈
        // 0.3%), so B(0.8k̄) collapses to the deterministic-load value
        // u(0.8); the measured utility must land on the closed form to
        // within the concentration width (8σ of the share: share
        // fluctuation ≈ 0.8/√k̄, times the utility slope ≈ 0.56 — call
        // it 0.015 with sampling slack).
        if mean_k == 1e5 {
            use bevra::utility::Utility;
            let closed = AdaptiveExp::paper().value(0.8);
            assert!(
                (measured - closed).abs() < 0.015,
                "k̄={mean_k}: measured {measured} vs concentration limit {closed}"
            );
        }
    }
}

/// Capacity used by the scale ladder above, factored so the model check
/// provably evaluates the same `C` the simulator ran with.
fn cfg_capacity(mean_k: f64) -> f64 {
    0.8 * mean_k
}

/// At the top of the scale ladder the discrete and continuum analyses must
/// also agree with *each other*: the geometric occupancy at k̄ = 10⁵
/// tabulated into `DiscreteModel` versus the paper's continuum
/// `ExponentialDensity` in closed form. The continuum replaces a sum over
/// ~10⁵-wide support with an integral; the discrepancy is O(1/k̄), so at
/// this scale the two must match to a few parts in 10⁴ — this pins the
/// analytical stack the simulator is validated against at exactly the
/// scale the sim tests above exercise.
#[test]
fn continuum_closed_form_matches_discrete_model_at_scale() {
    use bevra::analysis::continuum::ContinuumModel;
    use bevra::load::continuum::ExponentialDensity;

    let mean_k = 1e5;
    let discrete = DiscreteModel::new(
        Tabulated::from_model(&bevra::load::Geometric::from_mean(mean_k), 1e-10, 1 << 22),
        AdaptiveExp::paper(),
    );
    let continuum = ContinuumModel::new(ExponentialDensity::from_mean(mean_k), AdaptiveExp::paper());
    for c_over_k in [0.25, 0.8, 2.0] {
        let c = c_over_k * mean_k;
        let b_discrete = discrete.best_effort(c);
        let b_continuum = continuum.best_effort(c).unwrap_or_else(|e| {
            panic!("continuum B({c}) failed: {e:?}")
        });
        assert!(
            (b_discrete - b_continuum).abs() < 5e-4 * b_discrete.max(0.01),
            "B({c_over_k}·k̄): discrete {b_discrete} vs continuum {b_continuum}"
        );
    }
}

/// Pareto-mixed arrivals produce a visibly heavier occupancy tail than the
/// exponential mixing at matched mean. The separation lives deep in the
/// tail: a rate > 10·mean episode has probability `e^{−10} ≈ 5e−5` per
/// modulation switch under exponential mixing but ~1% under Pareto
/// (z = 2.3), so the occupancy mass above 10·mean is essentially all
/// Pareto's. One run holds only ~250 switches, so the masses are
/// aggregated over several seeds to keep the statistic out of small-count
/// noise; the runs fan out over the engine's pool.
#[test]
fn pareto_mixing_has_heavier_tail() {
    let seeds = [7u64, 11, 13, 2026];
    let cfgs: Vec<SimConfig> = seeds
        .iter()
        .flat_map(|&seed| {
            [
                base(400.0, Discipline::BestEffort, RateMixing::Exponential, seed),
                base(
                    400.0,
                    Discipline::BestEffort,
                    RateMixing::Pareto { z: 2.3, cap: 1e4 },
                    seed,
                ),
            ]
        })
        .collect();
    let reports = Simulation::run_batch(&cfgs);
    let tail = |t: &Tabulated, k: u64| t.tail_mass_above(k);
    let (mut te, mut tp) = (0.0, 0.0);
    for pair in reports.chunks(2) {
        te += tail(&pair[0].occupancy(), 300);
        tp += tail(&pair[1].occupancy(), 300);
    }
    assert!(
        tp > (4.0 * te).max(1e-3),
        "P[occupancy > 10·mean] over {} seeds: pareto {tp} vs exponential {te}",
        seeds.len()
    );
}
