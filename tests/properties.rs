//! Randomized property tests on the workspace's core invariants, run on
//! the `bevra-check` framework.
//!
//! Formerly hand-rolled seeded loops (and before that `proptest`, which
//! the offline build cannot fetch). Each property now gets:
//!
//! - a master seed hashed from its name (override: `BEVRA_CHECK_SEED`),
//! - the ambient case count (default 256, override: `BEVRA_CHECK_CASES`;
//!   expensive properties divide it with `scale_cases`),
//! - automatic counterexample shrinking, and a replay line
//!   (`BEVRA_CHECK_REPLAY=<case seed>`) in every failure message,
//! - failure records appended to `results/check-failures.jsonl`.

use bevra::analysis::DiscreteModel;
use bevra::load::{clip_at, flow_perspective, max_of_s, Geometric, Poisson, Tabulated};
use bevra::net::{max_min_allocation, FlowSpec, Topology};
use bevra::num::{bisect, brent};
use bevra::utility::{AdaptiveExp, Ramp, Rigid, Saturating, Utility};
use bevra_check::{choice, ensure, int_range, uniform, vec_of, Checker};

/// Weight-vector strategy: 2–39 entries in `[0, 10)` (mirrors the old
/// `arb_weights`). Element-wise shrinking pulls entries toward 0, so a
/// counterexample's irrelevant weights vanish; the all-zero vector the
/// shrinker could reach is not tabulatable and is treated as vacuous.
fn weights() -> impl bevra_check::Strategy<Value = Vec<f64>> {
    vec_of(uniform(0.0, 10.0).shrink_toward(&[0.0]), 2, 39)
}

/// `Tabulated::from_weights` needs some mass; degenerate vectors pass
/// vacuously (the generator essentially never produces them — this only
/// keeps the shrinker from crossing into panics).
fn tabulate(w: &[f64]) -> Option<Tabulated> {
    (w.iter().sum::<f64>() > 1e-9).then(|| Tabulated::from_weights(w.to_vec()))
}

#[test]
fn utilities_are_monotone_bounded() {
    Checker::new("utilities_are_monotone_bounded").run(
        &(uniform(0.05, 5.0), uniform(0.0, 50.0), uniform(0.0, 50.0)),
        |&(kappa, b1, b2)| {
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            let u = AdaptiveExp::new(kappa);
            ensure(u.value(lo) <= u.value(hi) + 1e-12, || {
                format!("AdaptiveExp({kappa}) not monotone on [{lo}, {hi}]")
            })?;
            ensure((0.0..=1.0).contains(&u.value(hi)), || {
                format!("AdaptiveExp({kappa})({hi}) out of [0, 1]")
            })?;
            let s = Saturating::new(kappa);
            ensure(s.value(lo) <= s.value(hi) + 1e-12, || {
                format!("Saturating({kappa}) not monotone on [{lo}, {hi}]")
            })
        },
    );
}

#[test]
fn ramp_h_coefficient_in_range() {
    Checker::new("ramp_h_coefficient_in_range").run(
        &(uniform(0.01, 1.0), uniform(2.05, 6.0)),
        |&(a, z)| {
            // 1 ≤ H(a, z) ≤ z − 1, monotone in a.
            let h = Ramp::new(a).h_coefficient(z);
            ensure(h >= 1.0 - 1e-12, || format!("H({a}, {z}) = {h} < 1"))?;
            ensure(h <= z - 1.0 + 1e-9, || format!("H({a}, {z}) = {h} > z - 1"))?;
            let h2 = Ramp::new((a * 0.5).max(1e-6)).h_coefficient(z);
            ensure(h2 <= h + 1e-9, || format!("H not monotone in a at ({a}, {z}): {h2} > {h}"))
        },
    );
}

#[test]
fn tabulated_invariants() {
    Checker::new("tabulated_invariants").run(&weights(), |w| {
        let Some(t) = tabulate(w) else { return Ok(()) };
        // Mass exactly 1; cdf monotone to 1; moments consistent.
        let mass: f64 = t.iter().map(|(_, p)| p).sum();
        ensure((mass - 1.0).abs() < 1e-9, || format!("mass {mass} != 1"))?;
        let mut prev = 0.0;
        for k in 0..t.len() as u64 {
            ensure(t.cdf(k) + 1e-12 >= prev, || format!("cdf not monotone at k={k}"))?;
            prev = t.cdf(k);
            let split = t.partial_mean(k) + t.tail_mean_above(k);
            ensure((split - t.mean()).abs() < 1e-9, || {
                format!("partial_mean + tail_mean_above != mean at k={k}")
            })?;
        }
        ensure(t.cdf(t.len() as u64 - 1) == 1.0, || "cdf does not reach 1".to_string())
    });
}

#[test]
fn quantiles_invert_cdf() {
    Checker::new("quantiles_invert_cdf").run(&(weights(), uniform(0.0, 1.0)), |&(ref w, q)| {
        let Some(t) = tabulate(w) else { return Ok(()) };
        let k = t.quantile(q);
        ensure(t.cdf(k) >= q - 1e-12, || format!("cdf(quantile({q})) = {} < q", t.cdf(k)))?;
        ensure(k == 0 || t.cdf(k - 1) < q + 1e-12, || format!("quantile({q}) = {k} not minimal"))
    });
}

#[test]
fn max_of_s_dominates() {
    Checker::new("max_of_s_dominates").run(&(weights(), int_range(1, 5)), |&(ref w, s)| {
        let Some(base) = tabulate(w) else { return Ok(()) };
        let m = max_of_s(&base, s as u32);
        // Stochastic dominance: F_max(k) ≤ F(k); equality at the top.
        for k in 0..base.len() as u64 {
            ensure(m.cdf(k) <= base.cdf(k) + 1e-12, || {
                format!("max-of-{s} cdf above base at k={k}")
            })?;
        }
        ensure(m.mean() + 1e-12 >= base.mean(), || {
            format!("max-of-{s} mean {} below base {}", m.mean(), base.mean())
        })
    });
}

#[test]
fn clipping_preserves_mass_and_caps_mean() {
    Checker::new("clipping_preserves_mass_and_caps_mean").run(
        &(weights(), int_range(0, 39)),
        |&(ref w, cap)| {
            let Some(base) = tabulate(w) else { return Ok(()) };
            let c = clip_at(&base, cap);
            let mass: f64 = c.iter().map(|(_, p)| p).sum();
            ensure((mass - 1.0).abs() < 1e-9, || format!("clip_at({cap}) mass {mass} != 1"))?;
            ensure(c.mean() <= base.mean() + 1e-9, || {
                format!("clip_at({cap}) raised the mean")
            })?;
            ensure(c.len() as u64 <= cap.min(base.len() as u64 - 1) + 1, || {
                format!("clip_at({cap}) support too long: {}", c.len())
            })
        },
    );
}

#[test]
fn flow_perspective_size_bias() {
    Checker::new("flow_perspective_size_bias").run(&uniform(2.0, 40.0), |&mean| {
        let p = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
        let q = flow_perspective(&p);
        // E_Q[k] = E_P[k²]/E_P[k] ≥ E_P[k].
        ensure(q.mean() >= p.mean() - 1e-9, || {
            format!("size-biased mean {} below base {}", q.mean(), p.mean())
        })?;
        ensure(q.pmf(0) == 0.0, || "flow perspective puts mass on k=0".to_string())
    });
}

#[test]
fn reservation_dominates_best_effort() {
    // Table construction dominates the runtime; a reduced case count keeps
    // the whole suite fast while still sweeping the parameter box.
    Checker::new("reservation_dominates_best_effort").scale_cases(4).run(
        &(
            uniform(5.0, 60.0),
            uniform(1.0, 200.0).shrink_toward(&[1.0]),
            choice(vec![true, false]),
        ),
        |&(mean, c, rigid)| {
            let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
            let (b, r) = if rigid {
                let m = DiscreteModel::new(load, Rigid::unit());
                (m.best_effort(c), m.reservation(c))
            } else {
                let m = DiscreteModel::new(load, AdaptiveExp::paper());
                (m.best_effort(c), m.reservation(c))
            };
            ensure(r >= b - 1e-9, || format!("mean={mean} c={c} rigid={rigid}: R {r} < B {b}"))?;
            ensure((0.0..=1.0 + 1e-9).contains(&b), || format!("B {b} out of range"))?;
            ensure((0.0..=1.0 + 1e-9).contains(&r), || format!("R {r} out of range"))
        },
    );
}

#[test]
fn best_effort_monotone_in_capacity() {
    Checker::new("best_effort_monotone_in_capacity").scale_cases(4).run(
        &(uniform(5.0, 40.0), uniform(1.0, 150.0), uniform(0.1, 50.0)),
        |&(mean, c, dc)| {
            let load = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
            let m = DiscreteModel::new(load, AdaptiveExp::paper());
            ensure(m.best_effort(c + dc) + 1e-12 >= m.best_effort(c), || {
                format!("B not monotone: mean={mean} c={c} dc={dc}")
            })
        },
    );
}

#[test]
fn maxmin_is_feasible_and_positive() {
    Checker::new("maxmin_is_feasible_and_positive").run(
        &(vec_of(uniform(1.0, 20.0), 1, 4), vec_of(int_range(0, 4), 1, 11)),
        |(caps, routes)| {
            let n_links = caps.len();
            let t = Topology::new(caps.clone());
            let flows: Vec<FlowSpec> =
                routes.iter().map(|&l| FlowSpec::unit(vec![l as usize % n_links])).collect();
            let rates = max_min_allocation(&t, &flows);
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.route.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                ensure(used <= cap + 1e-9, || {
                    format!("caps={caps:?} link {l} overloaded: {used} > {cap}")
                })?;
            }
            ensure(rates.iter().all(|&r| r > 0.0), || {
                format!("caps={caps:?}: some flow got a nonpositive rate")
            })
        },
    );
}

#[test]
fn brent_and_bisect_agree() {
    Checker::new("brent_and_bisect_agree").run(
        &(uniform(-5.0, -0.5), uniform(0.5, 5.0), uniform(-0.4, 0.4).shrink_toward(&[0.0])),
        |&(a, b, shift)| {
            // Monotone cubic with a root strictly inside (a, b).
            let f = |x: f64| (x - shift) * ((x - shift) * (x - shift) + 1.0);
            let r1 = brent(f, a, b, 1e-12).map_err(|e| format!("brent: {e:?}"))?;
            let r2 = bisect(f, a, b, 1e-12).map_err(|e| format!("bisect: {e:?}"))?;
            ensure((r1 - shift).abs() < 1e-8, || {
                format!("brent missed the root: {r1} vs {shift}")
            })?;
            ensure((r1 - r2).abs() < 1e-6, || format!("brent {r1} and bisect {r2} disagree"))
        },
    );
}

#[test]
fn blocking_fraction_decreases_in_capacity() {
    Checker::new("blocking_fraction_decreases_in_capacity").scale_cases(4).run(
        &(uniform(5.0, 40.0), uniform(5.0, 100.0)),
        |&(mean, c)| {
            let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
            let m = DiscreteModel::new(load, Rigid::unit());
            let th1 = m.blocking_fraction(c);
            let th2 = m.blocking_fraction(c + 10.0);
            ensure(th2 <= th1 + 1e-9, || format!("mean={mean} c={c}: {th2} > {th1}"))?;
            ensure((0.0..=1.0).contains(&th1), || format!("blocking {th1} out of [0, 1]"))
        },
    );
}

/// The retry policy's backoff schedule is a *pure function* of the policy
/// (bitwise-replayable, per the resilience crate's charter), each wait is
/// capped by `max_backoff_ms`, the jittered sequence never decreases
/// step-to-step, the attempt count respects `max_attempts`, and a nonzero
/// `total_budget_ms` bounds the cumulative wait.
#[test]
fn retry_backoff_is_deterministic_monotone_and_budget_bounded() {
    use bevra_resilience::RetryPolicy;
    Checker::new("retry_backoff_is_deterministic_monotone_and_budget_bounded").run(
        &(
            (int_range(0, 1_000), int_range(0, 5_000)),
            (int_range(0, 20_000), int_range(1, 12), int_range(0, 1 << 48)),
        ),
        |&((base, max), (budget, attempts, seed))| {
            let policy = RetryPolicy {
                max_attempts: u32::try_from(attempts).unwrap_or(1),
                base_backoff_ms: base,
                max_backoff_ms: max,
                total_budget_ms: budget,
                seed,
            };
            let schedule = policy.schedule();
            ensure(schedule == policy.schedule(), || {
                format!("schedule not deterministic for {policy:?}")
            })?;
            ensure((schedule.len() as u64) < attempts, || {
                format!("{} waits exceed max_attempts={attempts}", schedule.len())
            })?;
            for (i, w) in schedule.iter().enumerate() {
                ensure(*w <= max, || format!("wait[{i}]={w} above cap {max}: {schedule:?}"))?;
                ensure(i == 0 || schedule[i - 1] <= *w, || {
                    format!("jittered backoff decreased at step {i}: {schedule:?}")
                })?;
            }
            let total: u64 = schedule.iter().sum();
            ensure(budget == 0 || total <= budget, || {
                format!("cumulative wait {total} blew the {budget}ms budget: {schedule:?}")
            })
        },
    );
}
