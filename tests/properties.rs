//! Randomized property tests on the workspace's core invariants.
//!
//! Formerly written with `proptest`; the offline build environment cannot
//! fetch it, so each property is now a deterministic loop over seeded
//! random inputs from the workspace's own `rand` stand-in. No shrinking,
//! but every failure message carries the concrete inputs, and the case
//! count per property (`CASES`) matches proptest's default of 256.

use bevra::analysis::DiscreteModel;
use bevra::load::{clip_at, flow_perspective, max_of_s, Geometric, Poisson, Tabulated};
use bevra::net::{max_min_allocation, FlowSpec, Topology};
use bevra::num::{bisect, brent};
use bevra::utility::{AdaptiveExp, Ramp, Rigid, Saturating, Utility};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: usize = 256;

/// Uniform draw from `[lo, hi)`.
fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

/// Weight vector of 2–39 entries in `[0, 10)` with at least one positive
/// weight (mirrors the old `arb_weights` strategy).
fn arb_weights(rng: &mut StdRng) -> Vec<f64> {
    loop {
        let len = rng.random_range(2..40usize);
        let w: Vec<f64> = (0..len).map(|_| uniform(rng, 0.0, 10.0)).collect();
        if w.iter().sum::<f64>() > 1e-9 {
            return w;
        }
    }
}

#[test]
fn utilities_are_monotone_bounded() {
    let mut rng = StdRng::seed_from_u64(0x9d01);
    for _ in 0..CASES {
        let kappa = uniform(&mut rng, 0.05, 5.0);
        let b1 = uniform(&mut rng, 0.0, 50.0);
        let b2 = uniform(&mut rng, 0.0, 50.0);
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let u = AdaptiveExp::new(kappa);
        assert!(u.value(lo) <= u.value(hi) + 1e-12, "kappa={kappa} lo={lo} hi={hi}");
        assert!((0.0..=1.0).contains(&u.value(hi)), "kappa={kappa} hi={hi}");
        let s = Saturating::new(kappa);
        assert!(s.value(lo) <= s.value(hi) + 1e-12, "kappa={kappa} lo={lo} hi={hi}");
    }
}

#[test]
fn ramp_h_coefficient_in_range() {
    let mut rng = StdRng::seed_from_u64(0x9d02);
    for _ in 0..CASES {
        let a = uniform(&mut rng, 0.01, 1.0);
        let z = uniform(&mut rng, 2.05, 6.0);
        // 1 ≤ H(a, z) ≤ z − 1, monotone in a.
        let h = Ramp::new(a).h_coefficient(z);
        assert!(h >= 1.0 - 1e-12, "a={a} z={z} h={h}");
        assert!(h <= z - 1.0 + 1e-9, "a={a} z={z} h={h}");
        let h2 = Ramp::new((a * 0.5).max(1e-6)).h_coefficient(z);
        assert!(h2 <= h + 1e-9, "a={a} z={z}: {h2} > {h}");
    }
}

#[test]
fn tabulated_invariants() {
    let mut rng = StdRng::seed_from_u64(0x9d03);
    for _ in 0..CASES {
        let weights = arb_weights(&mut rng);
        let t = Tabulated::from_weights(weights.clone());
        // Mass exactly 1; cdf monotone to 1; moments consistent.
        let mass: f64 = t.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-9, "weights={weights:?}");
        let mut prev = 0.0;
        for k in 0..t.len() as u64 {
            assert!(t.cdf(k) + 1e-12 >= prev, "weights={weights:?} k={k}");
            prev = t.cdf(k);
            assert!(
                (t.partial_mean(k) + t.tail_mean_above(k) - t.mean()).abs() < 1e-9,
                "weights={weights:?} k={k}"
            );
        }
        assert_eq!(t.cdf(t.len() as u64 - 1), 1.0, "weights={weights:?}");
    }
}

#[test]
fn quantiles_invert_cdf() {
    let mut rng = StdRng::seed_from_u64(0x9d04);
    for _ in 0..CASES {
        let weights = arb_weights(&mut rng);
        let q = rng.random::<f64>();
        let t = Tabulated::from_weights(weights.clone());
        let k = t.quantile(q);
        assert!(t.cdf(k) >= q - 1e-12, "weights={weights:?} q={q}");
        if k > 0 {
            assert!(t.cdf(k - 1) < q + 1e-12, "weights={weights:?} q={q}");
        }
    }
}

#[test]
fn max_of_s_dominates() {
    let mut rng = StdRng::seed_from_u64(0x9d05);
    for _ in 0..CASES {
        let weights = arb_weights(&mut rng);
        let s = rng.random_range(1..6u32);
        let base = Tabulated::from_weights(weights.clone());
        let m = max_of_s(&base, s);
        // Stochastic dominance: F_max(k) ≤ F(k); equality at the top.
        for k in 0..base.len() as u64 {
            assert!(m.cdf(k) <= base.cdf(k) + 1e-12, "weights={weights:?} s={s} k={k}");
        }
        assert!(m.mean() + 1e-12 >= base.mean(), "weights={weights:?} s={s}");
    }
}

#[test]
fn clipping_preserves_mass_and_caps_mean() {
    let mut rng = StdRng::seed_from_u64(0x9d06);
    for _ in 0..CASES {
        let weights = arb_weights(&mut rng);
        let cap = rng.random_range(0..40u64);
        let base = Tabulated::from_weights(weights.clone());
        let c = clip_at(&base, cap);
        let mass: f64 = c.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-9, "weights={weights:?} cap={cap}");
        assert!(c.mean() <= base.mean() + 1e-9, "weights={weights:?} cap={cap}");
        assert!(
            c.len() as u64 <= cap.min(base.len() as u64 - 1) + 1,
            "weights={weights:?} cap={cap}"
        );
    }
}

#[test]
fn flow_perspective_size_bias() {
    let mut rng = StdRng::seed_from_u64(0x9d07);
    for _ in 0..CASES {
        let mean = uniform(&mut rng, 2.0, 40.0);
        let p = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
        let q = flow_perspective(&p);
        // E_Q[k] = E_P[k²]/E_P[k] ≥ E_P[k].
        assert!(q.mean() >= p.mean() - 1e-9, "mean={mean}");
        assert_eq!(q.pmf(0), 0.0, "mean={mean}");
    }
}

#[test]
fn reservation_dominates_best_effort() {
    let mut rng = StdRng::seed_from_u64(0x9d08);
    // Table construction dominates the runtime; a reduced case count keeps
    // the whole suite fast while still sweeping the parameter box.
    for _ in 0..CASES / 4 {
        let mean = uniform(&mut rng, 5.0, 60.0);
        let c = uniform(&mut rng, 1.0, 200.0);
        let rigid: bool = rng.random();
        let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
        let (b, r) = if rigid {
            let m = DiscreteModel::new(load, Rigid::unit());
            (m.best_effort(c), m.reservation(c))
        } else {
            let m = DiscreteModel::new(load, AdaptiveExp::paper());
            (m.best_effort(c), m.reservation(c))
        };
        assert!(r >= b - 1e-9, "mean={mean} c={c} rigid={rigid}: R {r} < B {b}");
        assert!((0.0..=1.0 + 1e-9).contains(&b), "mean={mean} c={c} rigid={rigid}");
        assert!((0.0..=1.0 + 1e-9).contains(&r), "mean={mean} c={c} rigid={rigid}");
    }
}

#[test]
fn best_effort_monotone_in_capacity() {
    let mut rng = StdRng::seed_from_u64(0x9d09);
    for _ in 0..CASES / 4 {
        let mean = uniform(&mut rng, 5.0, 40.0);
        let c = uniform(&mut rng, 1.0, 150.0);
        let dc = uniform(&mut rng, 0.1, 50.0);
        let load = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        assert!(
            m.best_effort(c + dc) + 1e-12 >= m.best_effort(c),
            "mean={mean} c={c} dc={dc}"
        );
    }
}

#[test]
fn maxmin_is_feasible_and_positive() {
    let mut rng = StdRng::seed_from_u64(0x9d0a);
    for _ in 0..CASES {
        let n_links = rng.random_range(1..5usize);
        let caps: Vec<f64> = (0..n_links).map(|_| uniform(&mut rng, 1.0, 20.0)).collect();
        let n_flows = rng.random_range(1..12usize);
        let t = Topology::new(caps.clone());
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|_| FlowSpec::unit(vec![rng.random_range(0..5usize) % n_links]))
            .collect();
        let rates = max_min_allocation(&t, &flows);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            assert!(used <= cap + 1e-9, "caps={caps:?} link {l} overloaded: {used} > {cap}");
        }
        for &r in &rates {
            assert!(r > 0.0, "caps={caps:?}: every flow gets a positive rate");
        }
    }
}

#[test]
fn brent_and_bisect_agree() {
    let mut rng = StdRng::seed_from_u64(0x9d0b);
    for _ in 0..CASES {
        let a = uniform(&mut rng, -5.0, -0.5);
        let b = uniform(&mut rng, 0.5, 5.0);
        let shift = uniform(&mut rng, -0.4, 0.4);
        // Monotone cubic with a root strictly inside (a, b).
        let f = |x: f64| (x - shift) * ((x - shift) * (x - shift) + 1.0);
        let r1 = brent(f, a, b, 1e-12).unwrap();
        let r2 = bisect(f, a, b, 1e-12).unwrap();
        assert!((r1 - shift).abs() < 1e-8, "a={a} b={b} shift={shift}");
        assert!((r1 - r2).abs() < 1e-6, "a={a} b={b} shift={shift}");
    }
}

#[test]
fn blocking_fraction_decreases_in_capacity() {
    let mut rng = StdRng::seed_from_u64(0x9d0c);
    for _ in 0..CASES / 4 {
        let mean = uniform(&mut rng, 5.0, 40.0);
        let c = uniform(&mut rng, 5.0, 100.0);
        let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
        let m = DiscreteModel::new(load, Rigid::unit());
        let th1 = m.blocking_fraction(c);
        let th2 = m.blocking_fraction(c + 10.0);
        assert!(th2 <= th1 + 1e-9, "mean={mean} c={c}: {th2} > {th1}");
        assert!((0.0..=1.0).contains(&th1), "mean={mean} c={c}");
    }
}
