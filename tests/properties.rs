//! Property-based tests (proptest) on the workspace's core invariants.

use bevra::analysis::DiscreteModel;
use bevra::load::{clip_at, flow_perspective, max_of_s, Geometric, Poisson, Tabulated};
use bevra::net::{max_min_allocation, FlowSpec, Topology};
use bevra::num::{bisect, brent};
use bevra::utility::{AdaptiveExp, Ramp, Rigid, Saturating, Utility};
use proptest::prelude::*;

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, 2..40).prop_filter(
        "at least one positive weight",
        |w| w.iter().sum::<f64>() > 1e-9,
    )
}

proptest! {
    #[test]
    fn utilities_are_monotone_bounded(kappa in 0.05f64..5.0, b1 in 0.0f64..50.0, b2 in 0.0f64..50.0) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let u = AdaptiveExp::new(kappa);
        prop_assert!(u.value(lo) <= u.value(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&u.value(hi)));
        let s = Saturating::new(kappa);
        prop_assert!(s.value(lo) <= s.value(hi) + 1e-12);
    }

    #[test]
    fn ramp_h_coefficient_in_range(a in 0.01f64..1.0, z in 2.05f64..6.0) {
        // 1 ≤ H(a, z) ≤ z − 1, monotone in a.
        let h = Ramp::new(a).h_coefficient(z);
        prop_assert!(h >= 1.0 - 1e-12);
        prop_assert!(h <= z - 1.0 + 1e-9);
        let h2 = Ramp::new((a * 0.5).max(1e-6)).h_coefficient(z);
        prop_assert!(h2 <= h + 1e-9);
    }

    #[test]
    fn tabulated_invariants(weights in arb_weights()) {
        let t = Tabulated::from_weights(weights);
        // Mass exactly 1; cdf monotone to 1; moments consistent.
        let mass: f64 = t.iter().map(|(_, p)| p).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..t.len() as u64 {
            prop_assert!(t.cdf(k) + 1e-12 >= prev);
            prev = t.cdf(k);
            prop_assert!((t.partial_mean(k) + t.tail_mean_above(k) - t.mean()).abs() < 1e-9);
        }
        prop_assert_eq!(t.cdf(t.len() as u64 - 1), 1.0);
    }

    #[test]
    fn quantiles_invert_cdf(weights in arb_weights(), q in 0.0f64..1.0) {
        let t = Tabulated::from_weights(weights);
        let k = t.quantile(q);
        prop_assert!(t.cdf(k) >= q - 1e-12);
        if k > 0 {
            prop_assert!(t.cdf(k - 1) < q + 1e-12);
        }
    }

    #[test]
    fn max_of_s_dominates(weights in arb_weights(), s in 1u32..6) {
        let base = Tabulated::from_weights(weights);
        let m = max_of_s(&base, s);
        // Stochastic dominance: F_max(k) ≤ F(k); equality at the top.
        for k in 0..base.len() as u64 {
            prop_assert!(m.cdf(k) <= base.cdf(k) + 1e-12);
        }
        prop_assert!(m.mean() + 1e-12 >= base.mean());
    }

    #[test]
    fn clipping_preserves_mass_and_caps_mean(weights in arb_weights(), cap in 0u64..40) {
        let base = Tabulated::from_weights(weights);
        let c = clip_at(&base, cap);
        let mass: f64 = c.iter().map(|(_, p)| p).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(c.mean() <= base.mean() + 1e-9);
        prop_assert!(c.len() as u64 <= cap.min(base.len() as u64 - 1) + 1);
    }

    #[test]
    fn flow_perspective_size_bias(mean in 2.0f64..40.0) {
        let p = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
        let q = flow_perspective(&p);
        // E_Q[k] = E_P[k²]/E_P[k] ≥ E_P[k].
        prop_assert!(q.mean() >= p.mean() - 1e-9);
        prop_assert_eq!(q.pmf(0), 0.0);
    }

    #[test]
    fn reservation_dominates_best_effort(mean in 5.0f64..60.0, c in 1.0f64..200.0, rigid in any::<bool>()) {
        let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
        let (b, r) = if rigid {
            let m = DiscreteModel::new(load, Rigid::unit());
            (m.best_effort(c), m.reservation(c))
        } else {
            let m = DiscreteModel::new(load, AdaptiveExp::paper());
            (m.best_effort(c), m.reservation(c))
        };
        prop_assert!(r >= b - 1e-9, "R {} < B {}", r, b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&b));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn best_effort_monotone_in_capacity(mean in 5.0f64..40.0, c in 1.0f64..150.0, dc in 0.1f64..50.0) {
        let load = Tabulated::from_model(&Poisson::new(mean), 1e-10, 1 << 14);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        prop_assert!(m.best_effort(c + dc) + 1e-12 >= m.best_effort(c));
    }

    #[test]
    fn maxmin_is_feasible_and_positive(
        caps in proptest::collection::vec(1.0f64..20.0, 1..5),
        seeds in proptest::collection::vec(0usize..5, 1..12),
    ) {
        let n_links = caps.len();
        let t = Topology::new(caps.clone());
        let flows: Vec<FlowSpec> = seeds
            .iter()
            .map(|&s| FlowSpec::unit(vec![s % n_links]))
            .collect();
        let rates = max_min_allocation(&t, &flows);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(used <= cap + 1e-9, "link {} overloaded: {} > {}", l, used, cap);
        }
        for &r in &rates {
            prop_assert!(r > 0.0, "every flow gets a positive rate");
        }
    }

    #[test]
    fn brent_and_bisect_agree(a in -5.0f64..-0.5, b in 0.5f64..5.0, shift in -0.4f64..0.4) {
        // Monotone cubic with a root strictly inside (a, b).
        let f = |x: f64| (x - shift) * ((x - shift) * (x - shift) + 1.0);
        let r1 = brent(f, a, b, 1e-12).unwrap();
        let r2 = bisect(f, a, b, 1e-12).unwrap();
        prop_assert!((r1 - shift).abs() < 1e-8);
        prop_assert!((r1 - r2).abs() < 1e-6);
    }

    #[test]
    fn blocking_fraction_decreases_in_capacity(mean in 5.0f64..40.0, c in 5.0f64..100.0) {
        let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-9, 1 << 14);
        let m = DiscreteModel::new(load, Rigid::unit());
        let th1 = m.blocking_fraction(c);
        let th2 = m.blocking_fraction(c + 10.0);
        prop_assert!(th2 <= th1 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&th1));
    }
}
