//! Golden-digest wall for the rearchitected event loop.
//!
//! The simulator's hot loop was rewritten — binary heap → timer wheel,
//! boxed per-flow state → struct-of-arrays [`bevra::sim::flows`], O(active)
//! max-population scans → a monotone [`bevra::sim::flows::PeakTracker`] —
//! with a bitwise-compatibility contract: *every* report bit, census
//! included, must equal the pre-refactor loop's. This file pins that
//! contract three ways on a ten-config corpus spanning every discipline,
//! mixing family, holding distribution, retry policy, and the budget
//! watchdog:
//!
//! 1. against **committed golden digests** captured from the pre-refactor
//!    loop (so neither the new loop nor the preserved oracle can drift
//!    together unnoticed),
//! 2. the new loop on the **heap** vs the **wheel** queue (queue choice is
//!    an implementation detail, never an observable), and
//! 3. the new loop vs the **preserved legacy loop**
//!    ([`bevra::sim::legacy`]), the verbatim pre-refactor implementation
//!    kept as a differential oracle.
//!
//! Any future change that alters a digest here is a *semantic* change to
//! the simulator and must re-pin deliberately, with the old and new
//! digests in the commit message.

use bevra::prelude::*;
use bevra::sim::{legacy, QueueKind, RetryPolicy, SimReport};
use std::sync::Arc;

/// Golden `SimReport::digest()` values captured from the pre-refactor
/// event loop (commit `bee8d8d`) on the corpus below, alongside each run's
/// completed-flow count as a cheap second witness.
const GOLDEN: [(u64, u64); 10] = [
    (0x7CB832531D8DA00B, 30042),
    (0xDF40388A535875BC, 26748),
    (0x1316958BBEAA06E9, 27165),
    (0x02778A634F7C167A, 29741),
    (0x0AE85D16A0820773, 120460),
    (0x7718EDADC9111A41, 29801),
    (0xAE173DE88E5BC624, 25589),
    (0xF5A0B358E49BC923, 30335),
    (0x0F16C20CEAB5E51B, 28599),
    (0x8A216240CCC906E3, 8990),
];

/// The pinned corpus: one config per behavioral regime of the simulator.
fn corpus() -> Vec<SimConfig> {
    let base = |capacity: f64, discipline: Discipline, mixing: RateMixing, seed: u64| SimConfig {
        capacity,
        discipline,
        arrivals: MixedPoisson::new(20.0, mixing, 40.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 50.0,
        horizon: 1500.0,
        seed,
        max_events: None,
    };
    let rp = RetryPolicy::new(6, 2.0, 0.05);
    vec![
        base(25.0, Discipline::BestEffort, RateMixing::Fixed, 101),
        base(25.0, Discipline::Reservation { k_max: 22, retry: None }, RateMixing::Fixed, 102),
        base(40.0, Discipline::BestEffort, RateMixing::Exponential, 103),
        SimConfig {
            utility: Arc::new(Rigid::unit()),
            ..base(18.0, Discipline::BestEffort, RateMixing::Fixed, 104)
        },
        base(60.0, Discipline::BestEffort, RateMixing::Pareto { z: 2.3, cap: 1e4 }, 105),
        base(25.0, Discipline::Reservation { k_max: 22, retry: Some(rp) }, RateMixing::Fixed, 106),
        base(
            20.0,
            Discipline::MeasurementBased { target_share: 1.0, ewma_weight: 0.1, retry: None },
            RateMixing::Fixed,
            107,
        ),
        SimConfig {
            holding: HoldingDist::Pareto { mean: 1.0, z: 2.5 },
            ..base(30.0, Discipline::BestEffort, RateMixing::Fixed, 108)
        },
        SimConfig {
            holding: HoldingDist::Deterministic { mean: 1.0 },
            ..base(30.0, Discipline::Reservation { k_max: 25, retry: None }, RateMixing::Fixed, 109)
        },
        SimConfig {
            max_events: Some(20_000),
            ..base(40.0, Discipline::BestEffort, RateMixing::Fixed, 110)
        },
    ]
}

fn summary(r: &SimReport) -> String {
    format!(
        "digest=0x{:016X} completed={} lost={} blocked={} retries={} events={}",
        r.digest(),
        r.completed,
        r.lost,
        r.blocked_attempts,
        r.retries,
        r.events
    )
}

/// The new SoA loop reproduces the committed pre-refactor digests exactly,
/// on both queue backends, and the preserved legacy oracle still produces
/// them too — three independent implementations, one bit pattern.
#[test]
fn corpus_digests_match_golden_on_all_implementations() {
    for (i, cfg) in corpus().into_iter().enumerate() {
        let (digest, completed) = GOLDEN[i];
        let wheel = Simulation::new(cfg.clone()).run_on(QueueKind::Wheel);
        let heap = Simulation::new(cfg.clone()).run_on(QueueKind::Heap);
        let oracle = legacy::run(&cfg);
        assert_eq!(
            wheel.digest(),
            digest,
            "corpus[{i}]: wheel loop drifted from golden — {}",
            summary(&wheel)
        );
        assert_eq!(wheel.completed, completed, "corpus[{i}]: completed-count witness drifted");
        assert_eq!(
            heap.digest(),
            digest,
            "corpus[{i}]: heap-backed new loop drifted from golden — {}",
            summary(&heap)
        );
        assert_eq!(
            oracle.digest(),
            digest,
            "corpus[{i}]: legacy oracle drifted from golden — {}",
            summary(&oracle)
        );
        // The digest folds the census and welfare accumulators; also pin
        // the raw event count (excluded from the digest by design).
        assert_eq!(wheel.events, oracle.events, "corpus[{i}]: event count diverged from oracle");
        assert_eq!(wheel.events, heap.events, "corpus[{i}]: event count diverged across queues");
    }
}

/// The wheel granularity is a performance knob, never a semantic one: the
/// same corpus digests come out at a granularity 512× coarser and 1000×
/// finer than the default (exercising heavy bucket sharing and the
/// overflow/cascade machinery respectively).
#[test]
fn wheel_granularity_does_not_change_digests() {
    // The env knob is process-global and other tests in this binary run
    // wheel-backed sims concurrently — harmless here, because the very
    // invariant under test is that the knob never changes a digest.
    for (i, cfg) in corpus().into_iter().enumerate().take(5) {
        let (digest, _) = GOLDEN[i];
        for granularity in ["8.0", "0.0000156"] {
            std::env::set_var(bevra::sim::wheel::WHEEL_GRANULARITY_ENV, granularity);
            let rep = Simulation::new(cfg.clone()).run_on(QueueKind::Wheel);
            std::env::remove_var(bevra::sim::wheel::WHEEL_GRANULARITY_ENV);
            assert_eq!(
                rep.digest(),
                digest,
                "corpus[{i}] at granularity {granularity}: {}",
                summary(&rep)
            );
        }
    }
}

/// The budget watchdog truncates identically across all three
/// implementations: same event count, same partial census, same digest.
#[test]
fn budget_truncation_is_implementation_independent() {
    for budget in [1_000u64, 7_777] {
        let mut cfg = corpus().swap_remove(2);
        cfg.max_events = Some(budget);
        let wheel = Simulation::new(cfg.clone()).run_on(QueueKind::Wheel);
        let heap = Simulation::new(cfg.clone()).run_on(QueueKind::Heap);
        let oracle = legacy::run(&cfg);
        assert_eq!(wheel.events, budget, "watchdog must stop exactly at the budget");
        assert_eq!(wheel.digest(), heap.digest(), "budget {budget}: queues diverged");
        assert_eq!(wheel.digest(), oracle.digest(), "budget {budget}: oracle diverged");
        assert_eq!(heap.events, oracle.events, "budget {budget}: event counts diverged");
    }
}
