//! Workspace acceptance for the resilience runtime: a sweep or fleet run
//! killed mid-flight must resume from its crash-safe checkpoint and land
//! on *bitwise* the same answer a never-interrupted run produces — for
//! the fleet, the same committed million-flow digest pin the determinism
//! wall enforces. Crash recovery is only real if it changes no bit.

use bevra::prelude::*;
use bevra::sim::{ckpt::FleetCheckpoint, Fleet, FleetConfig, QueueKind};
use bevra_check::chaos::silence_injected_panics;
use bevra_engine::{CacheMode, CheckpointStore};
use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bevra-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// An analysis sweep killed after its first checkpoint batch resumes from
/// disk instead of recomputing, and every resumed point is bit-identical
/// to an uninterrupted reference sweep.
#[test]
fn killed_sweep_resumes_bitwise_from_checkpoint() {
    use bevra::analysis::DiscreteModel;
    use bevra::load::{Poisson, Tabulated};

    silence_injected_panics();
    let dir = tmp_dir("sweep");
    let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 10);
    let model = || DiscreteModel::new(load.clone(), Rigid::unit());
    // 40 points → two checkpoint batches of 32 + 8.
    let cs: Vec<f64> = (1..=40).map(|i| f64::from(i) * 7.0).collect();
    let reference = SweepEngine::with_mode(model(), ExecMode::Serial).sweep(&cs);

    // Kill the sweep right after batch 0 lands on disk.
    let killed_engine = SweepEngine::with_mode(model(), ExecMode::Serial)
        .with_checkpoints(CheckpointStore::new(&dir, CacheMode::ReadWrite));
    {
        let _guard = install(
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "engine/ckpt-batch", 0)),
        );
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            killed_engine.sweep_checked(&cs)
        }));
        assert!(killed.is_err(), "the ckpt-batch kill site must fire");
    }
    let stores = killed_engine.checkpoint_store().map_or(0, CheckpointStore::stores);
    assert!(stores >= 1, "batch 0 was checkpointed before the kill");

    // A fresh engine over the same directory resumes and completes.
    let resumed_engine = SweepEngine::with_mode(model(), ExecMode::Serial)
        .with_checkpoints(CheckpointStore::new(&dir, CacheMode::ReadWrite));
    let resumed = resumed_engine.sweep_checked(&cs);
    let store = resumed_engine.checkpoint_store().expect("store attached");
    assert_eq!(store.restored_points(), 32, "the first batch was restored, not recomputed");
    assert!(resumed.health.is_clean(), "resumed sweep is clean: {}", resumed.health);
    assert_eq!(resumed.points().len(), reference.len());
    for (a, b) in reference.iter().zip(resumed.points()) {
        assert_eq!(a.best_effort.to_bits(), b.best_effort.to_bits());
        assert_eq!(a.reservation.to_bits(), b.reservation.to_bits());
        assert_eq!(a.performance_gap.to_bits(), b.performance_gap.to_bits());
        assert_eq!(a.bandwidth_gap.to_bits(), b.bandwidth_gap.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ~1M-flow fleet from the determinism wall, killed at the
/// checkpoint barrier and resumed from disk, still lands on the
/// *committed* merged-digest pin — crash recovery reproduces the exact
/// run the pin certifies, not merely a self-consistent one.
#[test]
fn killed_million_flow_fleet_resumes_onto_the_committed_pin() {
    silence_injected_panics();
    let dir = tmp_dir("fleet");
    // Identical to `tests/determinism.rs` — the digest pin below and CI's
    // sim-scale job certify this exact configuration.
    let fleet = || {
        Fleet::new(FleetConfig {
            base: SimConfig {
                capacity: 3000.0,
                discipline: Discipline::BestEffort,
                arrivals: MixedPoisson::new(2500.0, RateMixing::Fixed, 5000.0),
                holding: HoldingDist::Exponential { mean: 1.0 },
                utility: Arc::new(AdaptiveExp::paper()),
                warmup: 5.0,
                horizon: 100.0,
                seed: 0xF1EE7,
                max_events: None,
            },
            lanes: 4,
        })
        .with_checkpoint(FleetCheckpoint::new(&dir, CacheMode::ReadWrite))
    };

    // Kill the run at the checkpoint barrier: the group's lanes are
    // already on disk when the panic fires.
    {
        let _guard = install(
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "sim/fleet-ckpt", 0)),
        );
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fleet().run_on(4, QueueKind::Wheel)
        }));
        assert!(killed.is_err(), "the fleet-ckpt kill site must fire");
    }

    // Resume over the same directory: lanes come back from disk and the
    // merged digest is the committed million-flow pin, bit for bit.
    let resumed_fleet = fleet();
    let resumed = resumed_fleet.run_on(4, QueueKind::Wheel);
    let restored = resumed_fleet.checkpoint_store().map_or(0, FleetCheckpoint::restored_lanes);
    assert!(restored > 0, "resume restored lanes from the checkpoint");
    assert!(resumed.health.all_ok(), "resumed fleet is healthy: {:?}", resumed.health);
    assert!(resumed.merged.events > 2_000_000, "scale floor: {} events", resumed.merged.events);
    assert_eq!(
        resumed.merged.digest(),
        0xBE25_1F1D_BB9E_A0D0,
        "resumed million-flow digest drifted from the committed pin"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
