//! Workspace acceptance: the chaos suite's pinned-seed corpus.
//!
//! Each case installs a random-but-seeded fault plan (injected worker
//! panics, NaN/Inf corruption, forced solver errors, I/O faults, a
//! simulator watchdog override) and asserts the structured-degradation
//! invariants — no abort, no hang past the budget, exact `SweepHealth`
//! accounting, atomic artifacts, deterministic replay. See
//! `bevra_check::chaos` for the invariant definitions and the
//! `check-chaos` binary for the time-boxed randomized version.
//!
//! Cases run serially inside each test (fault plans are process-global;
//! the install lock inside `run_case` serializes across test threads).

use bevra_check::chaos::{run_case, silence_injected_panics};

/// The same fixed corpus base the `check-chaos` binary and CI use.
const CORPUS_BASE: u64 = 0xC4A05;

/// Every pinned corpus seed upholds all chaos invariants.
#[test]
fn pinned_chaos_corpus_passes() {
    silence_injected_panics();
    for seed in CORPUS_BASE..CORPUS_BASE + 8 {
        if let Err(e) = run_case(seed) {
            panic!("{e}");
        }
    }
}

/// Same case seed, same everything: scenario, plan, injection decisions,
/// degradation counters.
#[test]
fn chaos_cases_replay_identically() {
    silence_injected_panics();
    for seed in [CORPUS_BASE, CORPUS_BASE + 3, 0x5EED_u64] {
        let first = run_case(seed).unwrap_or_else(|e| panic!("{e}"));
        let second = run_case(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(first, second, "seed {seed} did not replay identically");
    }
}

/// The corpus actually exercises the fault machinery: across the pinned
/// seeds, some points fail, some degrade, some saves fail — the suite is
/// not vacuously green.
#[test]
fn pinned_chaos_corpus_is_not_vacuous() {
    silence_injected_panics();
    let mut total = bevra_check::ChaosStats::default();
    for seed in CORPUS_BASE..CORPUS_BASE + 8 {
        total += run_case(seed).unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(total.points > 0);
    assert!(total.failed > 0, "no injected panic landed across the corpus");
    assert!(total.degraded > 0, "no injected corruption landed across the corpus");
    assert!(total.sim_events > 0, "watchdog never engaged");
    assert!(total.saves > total.save_failures, "at least one artifact save succeeded");
}
