//! Workspace acceptance: the chaos suite's pinned-seed corpus.
//!
//! Each case installs a random-but-seeded fault plan (injected worker
//! panics, NaN/Inf corruption, forced solver errors, I/O faults, a
//! simulator watchdog override) and asserts the structured-degradation
//! invariants — no abort, no hang past the budget, exact `SweepHealth`
//! accounting, atomic artifacts, deterministic replay. See
//! `bevra_check::chaos` for the invariant definitions and the
//! `check-chaos` binary for the time-boxed randomized version.
//!
//! Cases run serially inside each test (fault plans are process-global;
//! the install lock inside `run_case` serializes across test threads).

use bevra_check::chaos::{run_case, run_recovery_case, silence_injected_panics};

/// The same fixed corpus base the `check-chaos` binary and CI use.
const CORPUS_BASE: u64 = 0xC4A05;

/// Every pinned corpus seed upholds all chaos invariants.
#[test]
fn pinned_chaos_corpus_passes() {
    silence_injected_panics();
    for seed in CORPUS_BASE..CORPUS_BASE + 8 {
        if let Err(e) = run_case(seed) {
            panic!("{e}");
        }
    }
}

/// Same case seed, same everything: scenario, plan, injection decisions,
/// degradation counters.
#[test]
fn chaos_cases_replay_identically() {
    silence_injected_panics();
    for seed in [CORPUS_BASE, CORPUS_BASE + 3, 0x5EED_u64] {
        let first = run_case(seed).unwrap_or_else(|e| panic!("{e}"));
        let second = run_case(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(first, second, "seed {seed} did not replay identically");
    }
}

/// Pinned cache-fault scenario: with transient faults on every cache
/// load and permanent faults on every cache store, a persistently-cached
/// engine must degrade to recompute — bitwise-identical results to an
/// uncached engine, nothing written to the cache directory, and the
/// absorbed faults visible on the I/O-error counter. Never a wrong
/// number, never an abort.
#[test]
fn pinned_cache_fault_scenario_degrades_to_recompute() {
    use bevra::analysis::DiscreteModel;
    use bevra::engine::{CacheMode, ExecMode, PersistentCache, SweepEngine};
    use bevra::load::{Poisson, Tabulated};
    use bevra::utility::AdaptiveExp;
    use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};

    let load = Tabulated::from_model(&Poisson::new(30.0), 1e-12, 1 << 10);
    let cs: Vec<f64> = (1..=12).map(|i| 5.0 * f64::from(i)).collect();
    let mk = || {
        SweepEngine::with_mode(
            DiscreteModel::new(load.clone(), AdaptiveExp::paper()),
            ExecMode::Serial,
        )
        .with_kernel(bevra::analysis::kernel::batch())
    };
    let baseline = mk().sweep(&cs);

    let dir = std::env::temp_dir().join(format!("bevra-pinned-cache-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::seeded(0x0CAC_4EFA)
        .rule(FaultRule::always(FaultKind::IoTransient, "io/cache/load"))
        .rule(FaultRule::always(FaultKind::IoPermanent, "io/cache/store"));
    let _guard = install(plan);

    let mut io_errors = 0;
    for pass in ["cold", "warm"] {
        let engine = mk().with_persistent_cache(PersistentCache::new(&dir, CacheMode::ReadWrite));
        let points = engine.sweep(&cs);
        for (b, p) in baseline.iter().zip(&points) {
            assert_eq!(
                b.best_effort.to_bits(),
                p.best_effort.to_bits(),
                "{pass} pass: B diverged under cache faults at C={}",
                b.capacity
            );
            assert_eq!(
                b.reservation.to_bits(),
                p.reservation.to_bits(),
                "{pass} pass: R diverged under cache faults at C={}",
                b.capacity
            );
        }
        let pc = engine.persistent_cache().expect("cache attached");
        assert_eq!(pc.stores(), 0, "{pass} pass: a store slipped past the permanent fault");
        io_errors += pc.io_errors();
    }
    assert!(io_errors >= 2, "faults never landed: {io_errors} absorbed");
    let leftovers = std::fs::read_dir(&dir).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftovers, 0, "failed stores left partial entries behind");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every failing pinned-corpus scenario ships a parseable black box: the
/// flight recorder's panic hook drains the last events on each injected
/// panic (even though the sweep isolates it), and the final synthetic
/// `panic` event names the tripped fault site — `engine/point`, the only
/// site the random chaos plans inject panics at.
#[test]
fn failing_corpus_cases_ship_a_blackbox() {
    use bevra_report::json::JsonValue;
    silence_injected_panics();
    let dir = std::env::temp_dir().join("bevra-chaos-blackbox");
    let mut checked = 0u64;
    for seed in CORPUS_BASE..CORPUS_BASE + 8 {
        let stats = run_case(seed).unwrap_or_else(|e| panic!("{e}"));
        if stats.failed == 0 {
            continue; // no injected panic landed: no black box owed
        }
        checked += 1;
        let path = dir.join(format!("chaos-{seed}-blackbox.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("seed {seed}: failing case left no blackbox at {}: {e}", path.display())
        });
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "seed {seed}: empty blackbox");
        for line in &lines {
            JsonValue::parse(line).unwrap_or_else(|e| {
                panic!("seed {seed}: unparseable blackbox line `{line}`: {e}")
            });
        }
        let last = JsonValue::parse(lines[lines.len() - 1]).expect("parsed above");
        assert_eq!(
            last.get("kind").and_then(JsonValue::as_str),
            Some("panic"),
            "seed {seed}: final event is the synthetic panic record"
        );
        assert_eq!(
            last.get("site").and_then(JsonValue::as_str),
            Some("engine/point"),
            "seed {seed}: final event names the tripped fault site"
        );
    }
    assert!(checked > 0, "corpus produced no failing case to check");
}

/// Pinned sharded-simulator scenario: *permanent* panics injected into
/// two lanes of a [`bevra::sim::Fleet`] run (`panic:sim/lane@at=2`, `@at=3`)
/// must degrade, not abort — the recovery supervisor burns its restart
/// budget on each dead lane (ledgered in [`bevra::sim::FleetHealth`]),
/// declares them dead one by one, every *surviving* lane's digest stays
/// bit-identical to a clean run (dead lanes cannot perturb their
/// neighbours' census), and the armed flight-recorder black box ships
/// with a final synthetic `panic` event naming the `sim/lane` site.
/// (A fault at the `sim/shard` site is no longer a way to kill lanes:
/// per-lane recovery bypasses it — see the fleet unit tests.)
#[test]
fn pinned_shard_panic_is_accounted_and_isolated() {
    use bevra::prelude::*;
    use bevra::sim::{Fleet, FleetConfig, QueueKind};
    use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
    use bevra_report::json::JsonValue;
    use std::sync::Arc;

    silence_injected_panics();
    let fleet = Fleet::new(FleetConfig {
        base: SimConfig {
            capacity: 25.0,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::new(20.0, RateMixing::Fixed, 40.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 10.0,
            horizon: 150.0,
            seed: 0x5A4D,
            max_events: None,
        },
        lanes: 6,
    });
    // Clean reference first, outside the fault plan's install lock.
    let clean = fleet.run_on(3, QueueKind::Wheel);
    assert!(clean.health.all_ok(), "reference run must be healthy");

    // Two rules, keyed to lanes 2 and 3 (both in shard 1 under
    // `chunk_ranges(6, 3)`), with no `n` bound: the injection fires on
    // *every* attempt, so the recovery supervisor's restarts trip it
    // again — *persistently* dead lanes, the case the health ledger
    // exists for.
    let dir = std::env::temp_dir().join("bevra-sim-shard-blackbox");
    let _ = std::fs::remove_dir_all(&dir);
    let id = format!("sim-shard-{}", std::process::id());
    let faulted = {
        let _guard = install(
            FaultPlan::seeded(0x51AD)
                .rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 2))
                .rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 3)),
        );
        bevra::obs::recorder::arm_blackbox(&id, &dir);
        fleet.run_on(3, QueueKind::Wheel)
    };

    // Exact accounting: lanes 2 and 3 failed (one entry each, in lane
    // order, both attributed to shard 1), nothing else did, and the
    // supervisor's futile restart attempts are ledgered.
    assert_eq!(faulted.health.ok_lanes, 4, "health: {:?}", faulted.health);
    assert_eq!(faulted.health.failed_lanes(), 2, "health: {:?}", faulted.health);
    assert_eq!(faulted.health.failed.len(), 2);
    assert!(faulted.health.restarts >= 2, "restarts ledgered: {:?}", faulted.health);
    for (failure, lane) in faulted.health.failed.iter().zip([2u32, 3]) {
        assert_eq!(failure.shard, 1);
        assert_eq!(failure.lanes, lane..lane + 1);
        assert!(
            failure.error.contains("injected"),
            "failure must carry the injected-panic message: {}",
            failure.error
        );
    }

    // Isolation: surviving lanes reproduce the clean run bit for bit; the
    // dead shard's lanes are absent, not fabricated.
    for lane in [0usize, 1, 4, 5] {
        assert_eq!(
            faulted.lane_digests[lane], clean.lane_digests[lane],
            "surviving lane {lane} diverged from the clean run"
        );
        assert!(faulted.lane_digests[lane].is_some());
    }
    assert_eq!(faulted.lane_digests[2], None);
    assert_eq!(faulted.lane_digests[3], None);
    assert!(
        faulted.merged.completed < clean.merged.completed,
        "merged report must reflect the missing lanes"
    );

    // The black box shipped: parseable JSONL whose final synthetic event
    // names the tripped site.
    let path = dir.join(format!("{id}-blackbox.jsonl"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no blackbox at {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "empty blackbox");
    for line in &lines {
        JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("unparseable blackbox line `{line}`: {e}"));
    }
    let last = JsonValue::parse(lines[lines.len() - 1]).expect("parsed above");
    assert_eq!(last.get("kind").and_then(JsonValue::as_str), Some("panic"));
    assert_eq!(last.get("site").and_then(JsonValue::as_str), Some("sim/lane"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every pinned recovery-corpus seed upholds the resilience invariants:
/// transient fleet faults rescued to the bitwise fault-free digest,
/// permanent faults degraded with per-lane accounting (and breaker
/// fail-fast), kill-at-checkpoint runs resumed digest-equal.
#[test]
fn pinned_recovery_corpus_passes() {
    silence_injected_panics();
    let mut total = bevra_check::ChaosStats::default();
    for seed in CORPUS_BASE..CORPUS_BASE + 4 {
        total += run_recovery_case(seed).unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(total.lane_restarts > 0, "no restart was exercised across the corpus");
    assert!(total.rescued_lanes > 0, "no lane was rescued across the corpus");
    assert!(total.dead_lanes > 0, "no permanent death was exercised");
}

/// The corpus actually exercises the fault machinery: across the pinned
/// seeds, some points fail, some degrade, some saves fail — the suite is
/// not vacuously green.
#[test]
fn pinned_chaos_corpus_is_not_vacuous() {
    silence_injected_panics();
    let mut total = bevra_check::ChaosStats::default();
    for seed in CORPUS_BASE..CORPUS_BASE + 8 {
        total += run_case(seed).unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(total.points > 0);
    assert!(total.failed > 0, "no injected panic landed across the corpus");
    assert!(total.degraded > 0, "no injected corruption landed across the corpus");
    assert!(total.sim_events > 0, "watchdog never engaged");
    assert!(total.saves > total.save_failures, "at least one artifact save succeeded");
    assert!(total.cache_sweeps > 0, "no cached sweep was compared");
}
