//! Workspace acceptance for the second observability layer: the cross-run
//! ledger's append/parse round-trip (including concurrent writers and
//! torn-line recovery) and the flight recorder's black box under an
//! injected engine-site panic.

use bevra_engine::ledger::{LedgerRecord, LEDGER_FILE};
use bevra_report::json::JsonValue;
use bevra_report::ledger::parse_ledger;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bevra-obs-accept-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn record(id: &str, digest: u64) -> LedgerRecord {
    LedgerRecord {
        id: id.into(),
        unix_ms: 1_754_000_000_000,
        fingerprint: 0xF00D,
        kernel: "batch".into(),
        simd: "autovec".into(),
        threads: 4,
        points: 240,
        seconds: 0.125,
        cache_hits: 12,
        cache_misses: 4,
        ok: 238,
        degraded: 1,
        failed: 1,
        non_finite: 2,
        retries: 1,
        breaker_trips: 0,
        restarts: 0,
        digest,
    }
}

/// Sequential appends parse back exactly, in order, with nothing skipped.
#[test]
fn ledger_append_parse_round_trip() {
    let path = tmp_dir("roundtrip").join(LEDGER_FILE);
    let written: Vec<LedgerRecord> =
        (0..5).map(|i| record(&format!("fig{i}"), 0x1000 + i)).collect();
    for r in &written {
        r.append(&path).expect("append");
    }
    let parsed = parse_ledger(&std::fs::read_to_string(&path).expect("read ledger"));
    assert_eq!(parsed.skipped, 0);
    assert_eq!(parsed.records, written);
}

/// Concurrent appenders (each line a single `O_APPEND` write) interleave
/// at line granularity: every line lands intact and parses back.
#[test]
fn ledger_survives_concurrent_writers() {
    const WRITERS: u64 = 8;
    const LINES: u64 = 40;
    let path = tmp_dir("concurrent").join(LEDGER_FILE);
    // Pre-create the parent so racing appenders don't race create_dir_all.
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let path = &path;
            scope.spawn(move || {
                for i in 0..LINES {
                    record(&format!("w{w}"), (w << 32) | i).append(path).expect("append");
                }
            });
        }
    });
    let parsed = parse_ledger(&std::fs::read_to_string(&path).expect("read ledger"));
    assert_eq!(parsed.skipped, 0, "no line was torn by concurrent appends");
    assert_eq!(parsed.records.len(), (WRITERS * LINES) as usize);
    for w in 0..WRITERS {
        let digests: Vec<u64> = parsed
            .records
            .iter()
            .filter(|r| r.id == format!("w{w}"))
            .map(|r| r.digest & 0xFFFF_FFFF)
            .collect();
        assert_eq!(
            digests,
            (0..LINES).collect::<Vec<u64>>(),
            "writer {w}: its own lines stay in append order"
        );
    }
}

/// A torn final line — a crashed writer — is skipped and counted; every
/// intact line still parses.
#[test]
fn ledger_recovers_from_torn_lines() {
    let path = tmp_dir("torn").join(LEDGER_FILE);
    record("fig2", 0xAA).append(&path).expect("append");
    record("fig3", 0xBB).append(&path).expect("append");
    // Simulate a crash mid-append: a prefix of a valid line, no newline.
    let torn = record("fig4", 0xCC).to_line();
    let mut text = std::fs::read_to_string(&path).expect("read");
    text.push_str(&torn[..torn.len() / 2]);
    std::fs::write(&path, &text).expect("write torn tail");
    let parsed = parse_ledger(&std::fs::read_to_string(&path).expect("reread"));
    assert_eq!(parsed.skipped, 1, "the torn tail is counted, not fatal");
    assert_eq!(parsed.records.len(), 2);
    assert_eq!(parsed.records[1].id, "fig3");
}

/// An injected `BEVRA_FAULTS`-style panic at the engine's per-point site
/// leaves a parseable black box whose final event names `engine/point`,
/// even though the sweep isolates the panic and completes.
#[test]
fn injected_engine_panic_writes_blackbox() {
    use bevra::analysis::DiscreteModel;
    use bevra::engine::{ExecMode, SweepEngine};
    use bevra::load::{Poisson, Tabulated};
    use bevra::utility::Rigid;
    use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};

    // Order matters: the silencer must go in before the blackbox hook so
    // the blackbox hook (chained in front) still sees injected panics.
    bevra_check::chaos::silence_injected_panics();
    let dir = tmp_dir("blackbox");
    bevra_obs::recorder::arm_blackbox("obs-accept", &dir);
    bevra_obs::recorder::set_recording(true);

    let plan = FaultPlan::seeded(0xB1AC_480C)
        .rule(FaultRule::with_prob(FaultKind::Panic, "engine/point", 0.5));
    let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 10);
    let cs: Vec<f64> = (1..=16).map(|i| 3.0 * f64::from(i)).collect();
    let checked = {
        let _guard = install(plan);
        SweepEngine::with_mode(DiscreteModel::new(load, Rigid::unit()), ExecMode::Serial)
            .sweep_checked(&cs)
    };
    assert!(checked.health.failed > 0, "the injected panic never landed");
    assert_eq!(checked.health.total(), cs.len() as u64, "sweep still accounted fully");

    let path = dir.join("obs-accept-blackbox.jsonl");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no blackbox at {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "blackbox carries events plus the panic record");
    for line in &lines {
        JsonValue::parse(line).unwrap_or_else(|e| panic!("bad blackbox line `{line}`: {e}"));
    }
    let last = JsonValue::parse(lines[lines.len() - 1]).expect("parsed above");
    assert_eq!(last.get("kind").and_then(JsonValue::as_str), Some("panic"));
    assert_eq!(
        last.get("site").and_then(JsonValue::as_str),
        Some("engine/point"),
        "final event names the tripped engine site"
    );
    // The body contains the fault-trip event the observer recorded.
    assert!(
        text.contains("\"kind\":\"fault-trip\"") && text.contains("engine/point"),
        "fault-trip events made it into the box: {text}"
    );
}
