//! Integration: welfare model (§4) and the two §5 extensions, end to end.

use bevra::analysis::retrying::{GeometricFamily, PoissonFamily, RetryModel};
use bevra::analysis::{
    equalizing_price_ratio, optimal_welfare, performance_gap, DiscreteModel, SampledValue,
    SamplingModel,
};
use bevra::load::{Geometric, Poisson, Tabulated};
use bevra::utility::{AdaptiveExp, Rigid};
use std::sync::Arc;

fn gamma(load: &Arc<Tabulated>, utility: impl bevra::utility::Utility + Clone, p: f64) -> f64 {
    let kbar = load.mean();
    let m = DiscreteModel::new(Arc::clone(load), utility);
    let sv_b = SampledValue::build(|c| m.total_best_effort(c), kbar, 200.0 * kbar, 400);
    let sv_r = SampledValue::build(|c| m.total_reservation(c), kbar, 200.0 * kbar, 400);
    equalizing_price_ratio(|ph| sv_r.welfare(ph).welfare, sv_b.welfare(p).welfare, p).unwrap()
}

#[test]
fn welfare_dominance_and_gamma_at_least_one() {
    let loads = [
        Arc::new(Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 18)),
        Arc::new(Tabulated::from_model(&Geometric::from_mean(50.0), 1e-12, 1 << 18)),
    ];
    for load in &loads {
        for p in [0.02, 0.1, 0.4] {
            let m = DiscreteModel::new(Arc::clone(load), Rigid::unit());
            let wb = optimal_welfare(|c| m.total_best_effort(c), p, 50.0, 1e4).unwrap();
            let wr = optimal_welfare(|c| m.total_reservation(c), p, 50.0, 1e4).unwrap();
            assert!(wr.welfare + 1e-9 >= wb.welfare, "p={p}");
            let g = gamma(load, Rigid::unit(), p);
            assert!(g >= 1.0, "γ({p}) = {g}");
        }
    }
}

#[test]
fn reservation_provisions_less_than_best_effort_for_rigid() {
    // At equal price the reservation network can deliver the same service
    // with less capacity (it spends nothing on overload headroom).
    let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20);
    let m = DiscreteModel::new(load, Rigid::unit());
    for p in [0.05, 0.2] {
        let wb = optimal_welfare(|c| m.total_best_effort(c), p, 100.0, 1e5).unwrap();
        let wr = optimal_welfare(|c| m.total_reservation(c), p, 100.0, 1e5).unwrap();
        assert!(
            wr.capacity <= wb.capacity + 1.0,
            "p={p}: C_R {} vs C_B {}",
            wr.capacity,
            wb.capacity
        );
    }
}

#[test]
fn adaptive_gamma_below_rigid_gamma() {
    let load = Arc::new(Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20));
    for p in [0.01, 0.1] {
        let g_rigid = gamma(&load, Rigid::unit(), p);
        let g_adaptive = gamma(&load, AdaptiveExp::paper(), p);
        assert!(
            g_adaptive <= g_rigid + 1e-6,
            "p={p}: adaptive γ {g_adaptive} vs rigid {g_rigid}"
        );
    }
}

#[test]
fn sampling_gap_exceeds_basic_gap_everywhere() {
    let load = Arc::new(Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 18));
    for c in [80.0, 150.0, 300.0] {
        let basic = performance_gap(
            &DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()),
            c,
        );
        let s5 = SamplingModel::new(
            DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()),
            5,
        )
        .performance_gap(c);
        assert!(s5 >= basic - 1e-9, "C={c}: S=5 gap {s5} vs basic {basic}");
    }
}

#[test]
fn retry_utility_monotone_in_alpha_and_bounded() {
    let c = 120.0;
    let mut prev = f64::INFINITY;
    for alpha in [0.0, 0.2, 0.5, 1.0] {
        let rm = RetryModel::new(
            GeometricFamily::new(1e-12, 1 << 18),
            AdaptiveExp::paper(),
            100.0,
            alpha,
        );
        let out = rm.evaluate(c).unwrap();
        assert!(out.reservation <= prev + 1e-12, "α={alpha}");
        assert!((0.0..=1.5).contains(&out.reservation));
        prev = out.reservation;
    }
}

#[test]
fn retry_fixed_point_is_self_consistent_across_families() {
    for c in [80.0, 150.0] {
        let rm = RetryModel::new(
            PoissonFamily::new(1e-12, 1 << 18),
            Rigid::unit(),
            60.0,
            0.1,
        );
        let out = rm.evaluate(c).unwrap();
        assert!(
            (out.effective_mean - 60.0 * (1.0 + out.retries)).abs() < 1e-3,
            "C={c}: L̂ {} vs L(1+D) {}",
            out.effective_mean,
            60.0 * (1.0 + out.retries)
        );
    }
}

#[test]
fn retry_widens_gap_under_cheap_bandwidth_for_heavy_tails() {
    // §5.2's qualitative point at large C: retries keep a residual
    // disutility α·θ alive, so the performance gap with retries exceeds the
    // basic gap once overprovisioned... for the heavy-tailed load where θ
    // decays slowly.
    let fam = bevra::analysis::retrying::AlgebraicFamily::new(3.0, 1e-7, 1 << 17);
    let rm = RetryModel::new(fam, AdaptiveExp::paper(), 100.0, 0.1);
    let basic_load = Tabulated::from_model(
        &bevra::load::Algebraic::from_mean(3.0, 100.0).unwrap(),
        1e-7,
        1 << 17,
    );
    let basic = DiscreteModel::new(basic_load, AdaptiveExp::paper());
    let c = 400.0;
    let with_retry = rm.performance_gap(c).unwrap();
    let without = performance_gap(&basic, c);
    assert!(
        with_retry > without,
        "C={c}: retry gap {with_retry} vs basic {without}"
    );
}
