//! Property tests for the grid-batched welfare kernels (satellite of the
//! batching PR): batched-vs-scalar parity across load × utility families,
//! `k_max` monotonicity with mutation tests proving the checkers and the
//! carried argmax bracket actually bite, and persistent-cache round trips.
//!
//! Shrinking, seeding, and replay work exactly like the differential
//! suite: `BEVRA_CHECK_SEED` rotates the corpus,
//! `BEVRA_CHECK_REPLAY=<case seed>` replays one case.

use bevra::analysis::{k_max_grid, sweep_grid, sweep_grid_fused, DiscreteModel, PiEval};
use bevra::analysis::kernel::{self, ParityClass};
use bevra::engine::{CacheMode, ExecMode, PersistentCache, SweepEngine};
use bevra::load::Tabulated;
use bevra::num::simd;
use bevra::utility::{Rigid, Utility};
use bevra_check::{ensure, Checker, Scenario, ScenarioStrategy};
use std::sync::{Arc, Mutex};

/// Serializes the tests that force a SIMD dispatch tier. `force_level` is
/// process-global; the bit-parity contract makes a concurrent reader's
/// *results* identical either way, but a tier-comparison test must know
/// which tier it actually measured.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Build the scenario's model for one load table (mirrors the
/// differential suite's cell construction, including the admission cap).
fn scenario_model(
    table: &Arc<Tabulated>,
    utility: &Arc<dyn Utility>,
    sc: &Scenario,
) -> DiscreteModel<Arc<dyn Utility>> {
    let m = DiscreteModel::new(Arc::clone(table), Arc::clone(utility));
    match sc.admission_cap {
        Some(cap) => m.with_admission_cap(cap),
        None => m,
    }
}

/// Sorted, deduped, bit-distinct copy of the scenario's capacity grid
/// (the batched kernels require ascending order).
fn sorted_grid(sc: &Scenario) -> Vec<f64> {
    let mut cs = sc.capacities.clone();
    cs.sort_unstable_by(f64::total_cmp);
    cs.dedup_by(|a, b| a.to_bits() == b.to_bits());
    cs
}

/// Exact batched kernels are **bitwise** the scalar per-point path —
/// `k_max`, `B`, and `R` — across all three load families and all three
/// utility families the scenario strategy draws, admission caps included.
#[test]
fn batched_exact_kernels_match_scalar_bitwise() {
    Checker::new("batch_exact_vs_scalar").scale_cases(8).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let got = sweep_grid(&model, &cs, PiEval::Exact);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c}");
                    ensure(got.k_max[i] == model.k_max(c), || {
                        format!(
                            "{cell}: batched k_max {:?} != scalar {:?}",
                            got.k_max[i],
                            model.k_max(c)
                        )
                    })?;
                    let b = model.best_effort(c);
                    let r = model.reservation(c);
                    ensure(got.best_effort[i].to_bits() == b.to_bits(), || {
                        format!("{cell}: batched B {:e} != scalar {b:e}", got.best_effort[i])
                    })?;
                    ensure(got.reservation[i].to_bits() == r.to_bits(), || {
                        format!("{cell}: batched R {:e} != scalar {r:e}", got.reservation[i])
                    })?;
                }
            }
            Ok(())
        },
    );
}

/// The fast (vectorized-π) kernel stays within its documented relative
/// budget of the scalar path on every cell. The budget is generous
/// relative to the observed error (~1e-15): π evaluations differ by at
/// most 8 ULPs and `B` is a positively weighted mean of them.
#[test]
fn batched_fast_kernel_stays_within_budget() {
    Checker::new("batch_fast_budget").scale_cases(8).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let got = sweep_grid(&model, &cs, PiEval::Fast);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c}");
                    // k_max and R never use the fast π; they are bitwise.
                    ensure(got.k_max[i] == model.k_max(c), || {
                        format!("{cell}: fast-mode k_max diverged")
                    })?;
                    let b = model.best_effort(c);
                    let tol = 1e-12 * b.abs().max(1e-12);
                    ensure((got.best_effort[i] - b).abs() <= tol, || {
                        format!(
                            "{cell}: fast B {:e} vs scalar {b:e} (tol {tol:e})",
                            got.best_effort[i]
                        )
                    })?;
                }
            }
            Ok(())
        },
    );
}

/// Index of the first adjacent pair violating `k_max` monotonicity in
/// `C`, ignoring `None` entries (nonpositive capacities / elastic loads).
fn monotonicity_violation(k_maxes: &[Option<u64>]) -> Option<usize> {
    let mut prev: Option<u64> = None;
    for (i, km) in k_maxes.iter().enumerate() {
        if let Some(k) = *km {
            if let Some(p) = prev {
                if k < p {
                    return Some(i);
                }
            }
            prev = Some(k);
        }
    }
    None
}

/// `k_max(C)` is nondecreasing in `C` on every randomized scenario — the
/// invariant the carried argmax bracket rests on.
#[test]
fn k_max_grid_is_monotone_in_capacity() {
    Checker::new("k_max_monotone").scale_cases(4).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for load in &sc.loads {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let kms = k_max_grid(&model, &cs);
                ensure(monotonicity_violation(&kms).is_none(), || {
                    format!("{load:?}: k_max grid not monotone: {kms:?} over {cs:?}")
                })?;
            }
            Ok(())
        },
    );
}

/// Mutation test: the monotonicity checker actually detects a decrement.
/// A checker that waves through an injected fault would make the property
/// above vacuous.
#[test]
fn monotonicity_checker_catches_injected_decrement() {
    let clean = vec![None, Some(3), Some(5), Some(7), None, Some(9)];
    assert_eq!(monotonicity_violation(&clean), None);
    // Decrementing any entry *after* the first threshold to below its
    // predecessor must be flagged (the first Some has no predecessor).
    for i in 2..clean.len() {
        if clean[i].is_none() {
            continue;
        }
        let prev = clean[..i].iter().rev().find_map(|k| *k).expect("predecessor");
        let mut mutated = clean.clone();
        mutated[i] = Some(prev - 1);
        assert!(
            monotonicity_violation(&mutated).is_some(),
            "checker missed injected decrement at {i}: {mutated:?}"
        );
    }
}

/// Mutation test: the carried bracket is load-bearing. Nudging the
/// carried lower bound *above* the true argmax (via the test-only hook)
/// must change the result — proving the production identity carry seeds
/// the search at, not past, the next threshold.
#[test]
fn carried_bracket_mutation_is_detectable() {
    use bevra::analysis::discrete_batch::k_max_grid_with_carry_nudge;
    let load = Tabulated::from_model(&bevra::load::Poisson::new(12.0), 1e-12, 1 << 10);
    let model = DiscreteModel::new(load, Rigid::unit());
    // Two capacities on the same rigid plateau: k_max = ⌊C⌋ = 10 for both.
    let cs = [10.2, 10.8];
    let clean = k_max_grid(&model, &cs);
    assert_eq!(clean, vec![Some(10), Some(10)]);
    // Overshooting the carry by one starts the second search above the
    // argmax, where the rigid value sequence is flat-to-falling: the
    // search cannot bracket a maximum any more.
    let mutated = k_max_grid_with_carry_nudge(&model, &cs, |k| k + 1);
    assert_eq!(mutated[0], Some(10), "first point has no carry to corrupt");
    assert_ne!(
        mutated[1],
        clean[1],
        "nudged carry must be detectable, else the bracket is dead code"
    );
}

/// Persistent-cache round trip: a cold run (compute + store) and a warm
/// run (pure load) produce bitwise-identical sweeps, and both equal an
/// engine with the cache disabled — so `BEVRA_CACHE=off` trivially
/// reproduces the pre-cache goldens.
#[test]
fn persistent_cache_round_trip_is_bitwise() {
    Checker::new("pcache_round_trip").cases(6).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let dir = std::env::temp_dir().join(format!(
                    "bevra-pcache-prop-{}-{li}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);

                let plain =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .sweep(&cs);
                let cold =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .with_persistent_cache(PersistentCache::new(&dir, CacheMode::ReadWrite));
                let cold_points = cold.sweep(&cs);
                let warm =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .with_persistent_cache(PersistentCache::new(&dir, CacheMode::ReadWrite));
                let warm_points = warm.sweep(&cs);

                let (_, pw) = warm
                    .cache_stats()
                    .into_iter()
                    .find(|(n, _)| n == "persistent")
                    .ok_or("no persistent cache stats")?;
                ensure(pw.hits >= 1 && pw.misses == 0, || {
                    format!("warm run not a pure hit: {pw:?}")
                })?;

                for ((p, c), w) in plain.iter().zip(&cold_points).zip(&warm_points) {
                    let cell = format!("load[{li}]={load:?} C={}", p.capacity);
                    for (name, a, b, d) in [
                        ("B", p.best_effort, c.best_effort, w.best_effort),
                        ("R", p.reservation, c.reservation, w.reservation),
                        ("Δ", p.bandwidth_gap, c.bandwidth_gap, w.bandwidth_gap),
                    ] {
                        ensure(a.to_bits() == b.to_bits(), || {
                            format!("{cell}: cold {name} {b:e} != uncached {a:e}")
                        })?;
                        ensure(b.to_bits() == d.to_bits(), || {
                            format!("{cell}: warm {name} {d:e} != cold {b:e}")
                        })?;
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
            Ok(())
        },
    );
}

/// Every **registered** backend holds its self-reported parity contract
/// against the scalar per-point reference, across randomized load ×
/// utility scenarios. Backends are enumerated from the engine registry,
/// so a newly registered backend (AVX-512, NEON, offload, …) is covered
/// by this test with zero per-backend code.
#[test]
fn every_registered_backend_holds_its_parity_contract() {
    let backends = bevra::engine::registry::backends();
    assert!(backends.len() >= 4, "expected at least the four built-ins");
    Checker::new("backend_parity_contract").scale_cases(4).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let dyn_model = model.as_dyn();
                for k in &backends {
                    let cap = k.capability();
                    let kms = k.k_max_grid(&dyn_model, &cs);
                    let bs = k.best_effort_grid(&dyn_model, &cs);
                    let rs = k.reservation_grid(&dyn_model, &cs, &kms, &bs);
                    for (i, &c) in cs.iter().enumerate() {
                        let cell = format!("{}: load[{li}]={load:?} C={c}", cap.name);
                        let b_ref = model.best_effort(c);
                        let r_ref = model.reservation(c);
                        let km_ref = model.k_max(c);
                        match cap.parity {
                            ParityClass::Bitwise => {
                                ensure(kms[i] == km_ref, || {
                                    format!("{cell}: k_max {:?} != scalar {km_ref:?}", kms[i])
                                })?;
                                ensure(bs[i].to_bits() == b_ref.to_bits(), || {
                                    format!("{cell}: B {:e} != scalar {b_ref:e}", bs[i])
                                })?;
                                ensure(rs[i].to_bits() == r_ref.to_bits(), || {
                                    format!("{cell}: R {:e} != scalar {r_ref:e}", rs[i])
                                })?;
                            }
                            ParityClass::Tolerance(t) => {
                                // A tolerance-class backend may pick a
                                // different argmax on an exact utility
                                // plateau, but threshold existence must
                                // agree.
                                ensure(kms[i].is_some() == km_ref.is_some(), || {
                                    format!(
                                        "{cell}: k_max Someness {:?} vs scalar {km_ref:?}",
                                        kms[i]
                                    )
                                })?;
                                let tol_b = 10.0 * t * b_ref.abs().max(1e-12);
                                ensure((bs[i] - b_ref).abs() <= tol_b, || {
                                    format!(
                                        "{cell}: B {:e} vs scalar {b_ref:e} (tol {tol_b:e})",
                                        bs[i]
                                    )
                                })?;
                                let tol_r = 10.0 * t * r_ref.abs().max(1e-12);
                                ensure((rs[i] - r_ref).abs() <= tol_r, || {
                                    format!(
                                        "{cell}: R {:e} vs scalar {r_ref:e} (tol {tol_r:e})",
                                        rs[i]
                                    )
                                })?;
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// The fused B+R traversal holds the same parity contract as the unfused
/// composition it replaces, across randomized load × utility scenarios:
/// `Exact` and `Portable` modes are **bitwise** the unfused pair (the
/// fused finalization mirrors their operation order exactly), and `Fast`
/// stays within the fast budget of the scalar reference. `k_max` is
/// always bitwise — fusion never touches the threshold search.
#[test]
fn fused_sweep_holds_parity_against_unfused() {
    Checker::new("fused_vs_unfused").scale_cases(6).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                for mode in [PiEval::Exact, PiEval::Portable] {
                    let plain = sweep_grid(&model, &cs, mode);
                    let fused = sweep_grid_fused(&model, &cs, mode);
                    for (i, &c) in cs.iter().enumerate() {
                        let cell = format!("load[{li}]={load:?} C={c} {mode:?}");
                        ensure(fused.k_max[i] == plain.k_max[i], || {
                            format!("{cell}: fused k_max diverged")
                        })?;
                        ensure(
                            fused.best_effort[i].to_bits() == plain.best_effort[i].to_bits(),
                            || {
                                format!(
                                    "{cell}: fused B {:e} != unfused {:e}",
                                    fused.best_effort[i], plain.best_effort[i]
                                )
                            },
                        )?;
                        ensure(
                            fused.reservation[i].to_bits() == plain.reservation[i].to_bits(),
                            || {
                                format!(
                                    "{cell}: fused R {:e} != unfused {:e}",
                                    fused.reservation[i], plain.reservation[i]
                                )
                            },
                        )?;
                    }
                }
                // Fast mode: the k-span walk regroups the series, so it is
                // tolerance-class against the scalar reference, not bitwise
                // against the unfused fast pair.
                let fused = sweep_grid_fused(&model, &cs, PiEval::Fast);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c} Fast");
                    ensure(fused.k_max[i] == model.k_max(c), || {
                        format!("{cell}: fused fast k_max diverged")
                    })?;
                    for (name, got, reference) in [
                        ("B", fused.best_effort[i], model.best_effort(c)),
                        ("R", fused.reservation[i], model.reservation(c)),
                    ] {
                        let tol = 1e-12 * reference.abs().max(1e-12);
                        ensure((got - reference).abs() <= tol, || {
                            format!("{cell}: fused fast {name} {got:e} vs scalar {reference:e}")
                        })?;
                    }
                }
            }
            Ok(())
        },
    );
}

/// The identity nudge is transparent: routing a fused fast sweep through
/// the mutation hook with `|k| k` must reproduce `sweep_grid_fused`
/// bit-for-bit on every randomized scenario — otherwise the hook itself
/// perturbs the path it exists to test, and the mutation test below
/// proves nothing. Runs under the Checker so a violation shrinks to a
/// minimal scenario.
#[test]
fn fused_split_nudge_identity_is_transparent() {
    use bevra::analysis::discrete_batch::sweep_grid_fused_with_split_nudge;
    Checker::new("fused_nudge_identity").scale_cases(4).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let clean = sweep_grid_fused(&model, &cs, PiEval::Fast);
                let hooked =
                    sweep_grid_fused_with_split_nudge(&model, &cs, PiEval::Fast, |k| k);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c}");
                    ensure(
                        hooked.best_effort[i].to_bits() == clean.best_effort[i].to_bits()
                            && hooked.reservation[i].to_bits() == clean.reservation[i].to_bits(),
                        || format!("{cell}: identity nudge changed the fused sweep"),
                    )?;
                }
            }
            Ok(())
        },
    );
}

/// Forced SIMD tiers are **bitwise-identical**: the dispatch contract
/// (one portable body, fixed sub-accumulator stride, never FMA) promises
/// that `BEVRA_SIMD` only changes throughput, never bits. Sweeps the
/// fused and unfused fast paths at every tier runnable on this host and
/// compares against the scalar-tier bits.
#[test]
fn forced_simd_tiers_are_bitwise_identical() {
    let _guard = TIER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let restore = simd::level();
    let detected = simd::detected();
    let tiers: Vec<simd::Level> = [simd::Level::Scalar, simd::Level::Avx2, simd::Level::Avx512]
        .into_iter()
        .filter(|t| t.runnable_at(detected))
        .collect();
    assert!(tiers.contains(&simd::Level::Scalar), "scalar runs everywhere");

    let load = Arc::new(Tabulated::from_model(
        &bevra::load::Algebraic::from_mean(3.0, 100.0).expect("fig4 family"),
        1e-9,
        1 << 14,
    ));
    let model = DiscreteModel::new(load, bevra::utility::AdaptiveExp::paper());
    let cs: Vec<f64> = (1..=32).map(|i| f64::from(i) * 1.5).collect();

    let mut per_tier = Vec::new();
    for &tier in &tiers {
        simd::force_level(tier);
        let unfused = sweep_grid(&model, &cs, PiEval::Fast);
        let fused = sweep_grid_fused(&model, &cs, PiEval::Fast);
        per_tier.push((tier, unfused, fused));
    }
    simd::force_level(restore);

    let (_, ref u0, ref f0) = per_tier[0];
    for (tier, unfused, fused) in &per_tier[1..] {
        for i in 0..cs.len() {
            assert_eq!(
                unfused.best_effort[i].to_bits(),
                u0.best_effort[i].to_bits(),
                "unfused B bits diverged at tier {} lane {i}",
                tier.as_str()
            );
            assert_eq!(
                fused.best_effort[i].to_bits(),
                f0.best_effort[i].to_bits(),
                "fused B bits diverged at tier {} lane {i}",
                tier.as_str()
            );
            assert_eq!(
                fused.reservation[i].to_bits(),
                f0.reservation[i].to_bits(),
                "fused R bits diverged at tier {} lane {i}",
                tier.as_str()
            );
        }
    }
}

/// Every registered backend holds its parity contract *under forced
/// SIMD tiers* as well — the registry sweep above at the detected tier,
/// repeated pinned to scalar and (when runnable) AVX2. A backend whose
/// wide path silently regroups arithmetic would pass at one tier and
/// fail here.
#[test]
fn registered_backends_hold_parity_under_forced_tiers() {
    let _guard = TIER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let restore = simd::level();
    let detected = simd::detected();
    let backends = bevra::engine::registry::backends();
    for tier in [simd::Level::Scalar, simd::Level::Avx2] {
        if !tier.runnable_at(detected) {
            continue;
        }
        simd::force_level(tier);
        Checker::new("backend_parity_forced_tier").cases(2).run(
            &ScenarioStrategy::default(),
            |sc: &Scenario| {
                let utility = sc.utility.as_dyn();
                let cs = sorted_grid(sc);
                for (li, load) in sc.loads.iter().enumerate() {
                    let table = Arc::new(load.tabulate()?);
                    let model = scenario_model(&table, &utility, sc);
                    let dyn_model = model.as_dyn();
                    for k in &backends {
                        let cap = k.capability();
                        let got = k.sweep_grid(&dyn_model, &cs);
                        for (i, &c) in cs.iter().enumerate() {
                            let cell = format!(
                                "{}@{}: load[{li}]={load:?} C={c}",
                                cap.name,
                                tier.as_str()
                            );
                            let b_ref = model.best_effort(c);
                            let r_ref = model.reservation(c);
                            match cap.parity {
                                ParityClass::Bitwise => {
                                    ensure(
                                        got.best_effort[i].to_bits() == b_ref.to_bits()
                                            && got.reservation[i].to_bits() == r_ref.to_bits(),
                                        || format!("{cell}: bitwise backend diverged"),
                                    )?;
                                }
                                ParityClass::Tolerance(t) => {
                                    let tol_b = 10.0 * t * b_ref.abs().max(1e-12);
                                    let tol_r = 10.0 * t * r_ref.abs().max(1e-12);
                                    ensure(
                                        (got.best_effort[i] - b_ref).abs() <= tol_b
                                            && (got.reservation[i] - r_ref).abs() <= tol_r,
                                        || {
                                            format!(
                                                "{cell}: B {:e}/R {:e} vs scalar {b_ref:e}/{r_ref:e}",
                                                got.best_effort[i], got.reservation[i]
                                            )
                                        },
                                    )?;
                                }
                            }
                        }
                    }
                }
                Ok(())
            },
        );
    }
    simd::force_level(restore);
}

/// Capability records of the built-ins carry the contract the rest of
/// the workspace depends on: distinct names, scalar/batch sharing one
/// bitwise cache class, fast/portable in tolerance classes of their own.
#[test]
fn builtin_capability_records_are_coherent() {
    let scalar = kernel::scalar().capability();
    let batch = kernel::batch().capability();
    let fast = kernel::fast().capability();
    let portable = kernel::portable().capability();
    assert_eq!(scalar.parity, ParityClass::Bitwise);
    assert_eq!(batch.parity, ParityClass::Bitwise);
    assert!(matches!(fast.parity, ParityClass::Tolerance(t) if t > 0.0));
    assert!(matches!(portable.parity, ParityClass::Tolerance(t) if t > 0.0));
    assert!(!scalar.grid_priming && batch.grid_priming);
    assert!(portable.portable && !fast.portable);
    assert_eq!(scalar.cache_tag, batch.cache_tag, "bitwise twins share entries");
    assert_ne!(fast.cache_tag, batch.cache_tag);
    assert_ne!(portable.cache_tag, fast.cache_tag);
    assert!(!scalar.fused, "scalar composes point-by-point");
    assert!(batch.fused && fast.fused && portable.fused, "grid backends fuse B+R");
    assert_eq!(
        fast.simd,
        kernel::resolved_simd_level(),
        "fast capability reports the runtime dispatch tier"
    );
    for cap in [scalar, batch, fast, portable] {
        assert!(!cap.fault_sites.is_empty(), "{}: no declared fault sites", cap.name);
    }
}
