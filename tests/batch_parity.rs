//! Property tests for the grid-batched welfare kernels (satellite of the
//! batching PR): batched-vs-scalar parity across load × utility families,
//! `k_max` monotonicity with mutation tests proving the checkers and the
//! carried argmax bracket actually bite, and persistent-cache round trips.
//!
//! Shrinking, seeding, and replay work exactly like the differential
//! suite: `BEVRA_CHECK_SEED` rotates the corpus,
//! `BEVRA_CHECK_REPLAY=<case seed>` replays one case.

use bevra::analysis::{k_max_grid, sweep_grid, DiscreteModel, PiEval};
use bevra::analysis::kernel::{self, ParityClass};
use bevra::engine::{CacheMode, ExecMode, PersistentCache, SweepEngine};
use bevra::load::Tabulated;
use bevra::utility::{Rigid, Utility};
use bevra_check::{ensure, Checker, Scenario, ScenarioStrategy};
use std::sync::Arc;

/// Build the scenario's model for one load table (mirrors the
/// differential suite's cell construction, including the admission cap).
fn scenario_model(
    table: &Arc<Tabulated>,
    utility: &Arc<dyn Utility>,
    sc: &Scenario,
) -> DiscreteModel<Arc<dyn Utility>> {
    let m = DiscreteModel::new(Arc::clone(table), Arc::clone(utility));
    match sc.admission_cap {
        Some(cap) => m.with_admission_cap(cap),
        None => m,
    }
}

/// Sorted, deduped, bit-distinct copy of the scenario's capacity grid
/// (the batched kernels require ascending order).
fn sorted_grid(sc: &Scenario) -> Vec<f64> {
    let mut cs = sc.capacities.clone();
    cs.sort_unstable_by(f64::total_cmp);
    cs.dedup_by(|a, b| a.to_bits() == b.to_bits());
    cs
}

/// Exact batched kernels are **bitwise** the scalar per-point path —
/// `k_max`, `B`, and `R` — across all three load families and all three
/// utility families the scenario strategy draws, admission caps included.
#[test]
fn batched_exact_kernels_match_scalar_bitwise() {
    Checker::new("batch_exact_vs_scalar").scale_cases(8).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let got = sweep_grid(&model, &cs, PiEval::Exact);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c}");
                    ensure(got.k_max[i] == model.k_max(c), || {
                        format!(
                            "{cell}: batched k_max {:?} != scalar {:?}",
                            got.k_max[i],
                            model.k_max(c)
                        )
                    })?;
                    let b = model.best_effort(c);
                    let r = model.reservation(c);
                    ensure(got.best_effort[i].to_bits() == b.to_bits(), || {
                        format!("{cell}: batched B {:e} != scalar {b:e}", got.best_effort[i])
                    })?;
                    ensure(got.reservation[i].to_bits() == r.to_bits(), || {
                        format!("{cell}: batched R {:e} != scalar {r:e}", got.reservation[i])
                    })?;
                }
            }
            Ok(())
        },
    );
}

/// The fast (vectorized-π) kernel stays within its documented relative
/// budget of the scalar path on every cell. The budget is generous
/// relative to the observed error (~1e-15): π evaluations differ by at
/// most 8 ULPs and `B` is a positively weighted mean of them.
#[test]
fn batched_fast_kernel_stays_within_budget() {
    Checker::new("batch_fast_budget").scale_cases(8).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let got = sweep_grid(&model, &cs, PiEval::Fast);
                for (i, &c) in cs.iter().enumerate() {
                    let cell = format!("load[{li}]={load:?} C={c}");
                    // k_max and R never use the fast π; they are bitwise.
                    ensure(got.k_max[i] == model.k_max(c), || {
                        format!("{cell}: fast-mode k_max diverged")
                    })?;
                    let b = model.best_effort(c);
                    let tol = 1e-12 * b.abs().max(1e-12);
                    ensure((got.best_effort[i] - b).abs() <= tol, || {
                        format!(
                            "{cell}: fast B {:e} vs scalar {b:e} (tol {tol:e})",
                            got.best_effort[i]
                        )
                    })?;
                }
            }
            Ok(())
        },
    );
}

/// Index of the first adjacent pair violating `k_max` monotonicity in
/// `C`, ignoring `None` entries (nonpositive capacities / elastic loads).
fn monotonicity_violation(k_maxes: &[Option<u64>]) -> Option<usize> {
    let mut prev: Option<u64> = None;
    for (i, km) in k_maxes.iter().enumerate() {
        if let Some(k) = *km {
            if let Some(p) = prev {
                if k < p {
                    return Some(i);
                }
            }
            prev = Some(k);
        }
    }
    None
}

/// `k_max(C)` is nondecreasing in `C` on every randomized scenario — the
/// invariant the carried argmax bracket rests on.
#[test]
fn k_max_grid_is_monotone_in_capacity() {
    Checker::new("k_max_monotone").scale_cases(4).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for load in &sc.loads {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let kms = k_max_grid(&model, &cs);
                ensure(monotonicity_violation(&kms).is_none(), || {
                    format!("{load:?}: k_max grid not monotone: {kms:?} over {cs:?}")
                })?;
            }
            Ok(())
        },
    );
}

/// Mutation test: the monotonicity checker actually detects a decrement.
/// A checker that waves through an injected fault would make the property
/// above vacuous.
#[test]
fn monotonicity_checker_catches_injected_decrement() {
    let clean = vec![None, Some(3), Some(5), Some(7), None, Some(9)];
    assert_eq!(monotonicity_violation(&clean), None);
    // Decrementing any entry *after* the first threshold to below its
    // predecessor must be flagged (the first Some has no predecessor).
    for i in 2..clean.len() {
        if clean[i].is_none() {
            continue;
        }
        let prev = clean[..i].iter().rev().find_map(|k| *k).expect("predecessor");
        let mut mutated = clean.clone();
        mutated[i] = Some(prev - 1);
        assert!(
            monotonicity_violation(&mutated).is_some(),
            "checker missed injected decrement at {i}: {mutated:?}"
        );
    }
}

/// Mutation test: the carried bracket is load-bearing. Nudging the
/// carried lower bound *above* the true argmax (via the test-only hook)
/// must change the result — proving the production identity carry seeds
/// the search at, not past, the next threshold.
#[test]
fn carried_bracket_mutation_is_detectable() {
    use bevra::analysis::discrete_batch::k_max_grid_with_carry_nudge;
    let load = Tabulated::from_model(&bevra::load::Poisson::new(12.0), 1e-12, 1 << 10);
    let model = DiscreteModel::new(load, Rigid::unit());
    // Two capacities on the same rigid plateau: k_max = ⌊C⌋ = 10 for both.
    let cs = [10.2, 10.8];
    let clean = k_max_grid(&model, &cs);
    assert_eq!(clean, vec![Some(10), Some(10)]);
    // Overshooting the carry by one starts the second search above the
    // argmax, where the rigid value sequence is flat-to-falling: the
    // search cannot bracket a maximum any more.
    let mutated = k_max_grid_with_carry_nudge(&model, &cs, |k| k + 1);
    assert_eq!(mutated[0], Some(10), "first point has no carry to corrupt");
    assert_ne!(
        mutated[1],
        clean[1],
        "nudged carry must be detectable, else the bracket is dead code"
    );
}

/// Persistent-cache round trip: a cold run (compute + store) and a warm
/// run (pure load) produce bitwise-identical sweeps, and both equal an
/// engine with the cache disabled — so `BEVRA_CACHE=off` trivially
/// reproduces the pre-cache goldens.
#[test]
fn persistent_cache_round_trip_is_bitwise() {
    Checker::new("pcache_round_trip").cases(6).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let dir = std::env::temp_dir().join(format!(
                    "bevra-pcache-prop-{}-{li}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);

                let plain =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .sweep(&cs);
                let cold =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .with_persistent_cache(PersistentCache::new(&dir, CacheMode::ReadWrite));
                let cold_points = cold.sweep(&cs);
                let warm =
                    SweepEngine::with_mode(scenario_model(&table, &utility, sc), ExecMode::Serial)
                        .with_kernel(kernel::batch())
                        .with_persistent_cache(PersistentCache::new(&dir, CacheMode::ReadWrite));
                let warm_points = warm.sweep(&cs);

                let (_, pw) = warm
                    .cache_stats()
                    .into_iter()
                    .find(|(n, _)| n == "persistent")
                    .ok_or("no persistent cache stats")?;
                ensure(pw.hits >= 1 && pw.misses == 0, || {
                    format!("warm run not a pure hit: {pw:?}")
                })?;

                for ((p, c), w) in plain.iter().zip(&cold_points).zip(&warm_points) {
                    let cell = format!("load[{li}]={load:?} C={}", p.capacity);
                    for (name, a, b, d) in [
                        ("B", p.best_effort, c.best_effort, w.best_effort),
                        ("R", p.reservation, c.reservation, w.reservation),
                        ("Δ", p.bandwidth_gap, c.bandwidth_gap, w.bandwidth_gap),
                    ] {
                        ensure(a.to_bits() == b.to_bits(), || {
                            format!("{cell}: cold {name} {b:e} != uncached {a:e}")
                        })?;
                        ensure(b.to_bits() == d.to_bits(), || {
                            format!("{cell}: warm {name} {d:e} != cold {b:e}")
                        })?;
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
            Ok(())
        },
    );
}

/// Every **registered** backend holds its self-reported parity contract
/// against the scalar per-point reference, across randomized load ×
/// utility scenarios. Backends are enumerated from the engine registry,
/// so a newly registered backend (AVX-512, NEON, offload, …) is covered
/// by this test with zero per-backend code.
#[test]
fn every_registered_backend_holds_its_parity_contract() {
    let backends = bevra::engine::registry::backends();
    assert!(backends.len() >= 4, "expected at least the four built-ins");
    Checker::new("backend_parity_contract").scale_cases(4).run(
        &ScenarioStrategy::default(),
        |sc: &Scenario| {
            let utility = sc.utility.as_dyn();
            let cs = sorted_grid(sc);
            for (li, load) in sc.loads.iter().enumerate() {
                let table = Arc::new(load.tabulate()?);
                let model = scenario_model(&table, &utility, sc);
                let dyn_model = model.as_dyn();
                for k in &backends {
                    let cap = k.capability();
                    let kms = k.k_max_grid(&dyn_model, &cs);
                    let bs = k.best_effort_grid(&dyn_model, &cs);
                    let rs = k.reservation_grid(&dyn_model, &cs, &kms, &bs);
                    for (i, &c) in cs.iter().enumerate() {
                        let cell = format!("{}: load[{li}]={load:?} C={c}", cap.name);
                        let b_ref = model.best_effort(c);
                        let r_ref = model.reservation(c);
                        let km_ref = model.k_max(c);
                        match cap.parity {
                            ParityClass::Bitwise => {
                                ensure(kms[i] == km_ref, || {
                                    format!("{cell}: k_max {:?} != scalar {km_ref:?}", kms[i])
                                })?;
                                ensure(bs[i].to_bits() == b_ref.to_bits(), || {
                                    format!("{cell}: B {:e} != scalar {b_ref:e}", bs[i])
                                })?;
                                ensure(rs[i].to_bits() == r_ref.to_bits(), || {
                                    format!("{cell}: R {:e} != scalar {r_ref:e}", rs[i])
                                })?;
                            }
                            ParityClass::Tolerance(t) => {
                                // A tolerance-class backend may pick a
                                // different argmax on an exact utility
                                // plateau, but threshold existence must
                                // agree.
                                ensure(kms[i].is_some() == km_ref.is_some(), || {
                                    format!(
                                        "{cell}: k_max Someness {:?} vs scalar {km_ref:?}",
                                        kms[i]
                                    )
                                })?;
                                let tol_b = 10.0 * t * b_ref.abs().max(1e-12);
                                ensure((bs[i] - b_ref).abs() <= tol_b, || {
                                    format!(
                                        "{cell}: B {:e} vs scalar {b_ref:e} (tol {tol_b:e})",
                                        bs[i]
                                    )
                                })?;
                                let tol_r = 10.0 * t * r_ref.abs().max(1e-12);
                                ensure((rs[i] - r_ref).abs() <= tol_r, || {
                                    format!(
                                        "{cell}: R {:e} vs scalar {r_ref:e} (tol {tol_r:e})",
                                        rs[i]
                                    )
                                })?;
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Capability records of the built-ins carry the contract the rest of
/// the workspace depends on: distinct names, scalar/batch sharing one
/// bitwise cache class, fast/portable in tolerance classes of their own.
#[test]
fn builtin_capability_records_are_coherent() {
    let scalar = kernel::scalar().capability();
    let batch = kernel::batch().capability();
    let fast = kernel::fast().capability();
    let portable = kernel::portable().capability();
    assert_eq!(scalar.parity, ParityClass::Bitwise);
    assert_eq!(batch.parity, ParityClass::Bitwise);
    assert!(matches!(fast.parity, ParityClass::Tolerance(t) if t > 0.0));
    assert!(matches!(portable.parity, ParityClass::Tolerance(t) if t > 0.0));
    assert!(!scalar.grid_priming && batch.grid_priming);
    assert!(portable.portable && !fast.portable);
    assert_eq!(scalar.cache_tag, batch.cache_tag, "bitwise twins share entries");
    assert_ne!(fast.cache_tag, batch.cache_tag);
    assert_ne!(portable.cache_tag, fast.cache_tag);
    for cap in [scalar, batch, fast, portable] {
        assert!(!cap.fault_sites.is_empty(), "{}: no declared fault sites", cap.name);
    }
}
