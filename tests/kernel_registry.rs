//! Workspace acceptance for the kernel backend registry (the backend
//! PR's tentpole): capability records flow into the persistent-cache key,
//! the ported scalar backend is bitwise the pre-refactor per-point path,
//! and the `deterministic-portable` backend produces pinned,
//! libm-independent bits.

use bevra::analysis::{kernel, DiscreteModel, PiEval};
use bevra::engine::{CacheMode, ExecMode, PersistentCache, SweepEngine};
use bevra::load::{Poisson, Tabulated};
use bevra::utility::AdaptiveExp;

fn model() -> DiscreteModel<AdaptiveExp> {
    let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
    DiscreteModel::new(load, AdaptiveExp::paper())
}

fn grid() -> Vec<f64> {
    (1..=16).map(|i| 2.5 * f64::from(i)).collect()
}

/// The capability record round-trips through the persistent-cache key:
/// rows primed by one parity class are never served to another, while
/// bitwise-interchangeable backends (scalar/batch share a `cache_tag`)
/// do share entries. Checked functionally through real cache traffic,
/// not just key inequality.
#[test]
fn capability_record_round_trips_through_cache_key() {
    let dir = std::env::temp_dir()
        .join(format!("bevra-kernel-cache-key-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cs = grid();
    let pcache = || PersistentCache::new(&dir, CacheMode::ReadWrite);
    let engine = |k| {
        SweepEngine::with_mode(model(), ExecMode::Serial)
            .with_kernel(k)
            .with_persistent_cache(pcache())
    };

    // Cold batch prime: one miss, one store.
    let batch = engine(kernel::batch());
    batch.prime(&cs);
    assert_eq!(batch.persistent_cache().map(|p| p.stores()), Some(1));

    // Fast and portable request different capability keys: both miss the
    // batch entry and store their own.
    for k in [kernel::fast(), kernel::portable()] {
        let other = engine(k);
        other.prime(&cs);
        let pc = other.persistent_cache().expect("cache attached");
        let s = pc.stats();
        assert_eq!(
            (s.hits, s.misses),
            (0, 1),
            "{}: must not be served another parity class's rows",
            k.capability().name
        );
        assert_eq!(pc.stores(), 1, "{}: stores its own entry", k.capability().name);
    }

    // A warm batch engine is a pure hit again…
    let warm = engine(kernel::batch());
    warm.prime(&cs);
    let s = warm.persistent_cache().expect("cache attached").stats();
    assert_eq!((s.hits, s.misses), (1, 0), "batch warm prime is a pure hit");

    // …and scalar/batch sharing a cache class is visible in the key
    // itself (scalar never primes, so the check is on `grid_key`).
    let m = model();
    let scalar_cap = kernel::scalar().capability();
    let batch_cap = kernel::batch().capability();
    assert_eq!(
        bevra::engine::grid_key(&m, &scalar_cap, &cs),
        bevra::engine::grid_key(&m, &batch_cap, &cs),
        "bitwise twins share cache entries"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ported scalar backend is bitwise the pre-refactor per-point path:
/// `DiscreteModel::{k_max, best_effort, reservation}` called point by
/// point plus the serial `bandwidth_gap` solver — the exact code the
/// engine ran before the `Kernel` trait existed.
#[test]
fn scalar_backend_is_bitwise_the_pre_refactor_path() {
    let cs = grid();
    let reference = model();
    let swept = SweepEngine::with_mode(model(), ExecMode::Serial)
        .with_kernel(kernel::scalar())
        .sweep(&cs);
    for (&c, pt) in cs.iter().zip(&swept) {
        assert_eq!(reference.k_max(c), kernel_k_max(&reference, c), "sanity");
        assert_eq!(reference.best_effort(c).to_bits(), pt.best_effort.to_bits(), "B at C={c}");
        assert_eq!(reference.reservation(c).to_bits(), pt.reservation.to_bits(), "R at C={c}");
        let gap = bevra::analysis::bandwidth_gap(&reference, c).unwrap_or(f64::NAN);
        assert_eq!(gap.to_bits(), pt.bandwidth_gap.to_bits(), "Δ at C={c}");
    }
}

/// The scalar *backend object* agrees with the model methods it claims to
/// mirror (guards the trait impl itself, not just the engine plumbing).
fn kernel_k_max(m: &DiscreteModel<AdaptiveExp>, c: f64) -> Option<u64> {
    let dyn_m = m.as_dyn();
    kernel::scalar().k_max_grid(&dyn_m, &[c])[0]
}

/// FNV-1a over a stream of u64 bit patterns.
fn fnv(bits: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in bits {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The `deterministic-portable` backend's bits are **pinned**: the whole
/// pipeline below it — explicit literal load weights, the κ literal, the
/// integer-scaled `one_minus_exp_neg` polynomial, Neumaier summation —
/// avoids libm entirely, so this digest must reproduce on every OS, libm
/// version, and CPU architecture. A digest change means the portable
/// contract broke (or the pipeline was intentionally changed: re-pin with
/// the printed value). This is the test that retires the libm-ULP
/// seed-artifact drift caveat: portable artifacts can be golden-pinned
/// exactly, with zero ULP budget.
#[test]
fn portable_backend_digest_is_pinned_across_environments() {
    // Literal weights (an asymmetric bell around k = 4) — no libm in the
    // table construction, unlike `Tabulated::from_model(&Poisson, ..)`.
    let load = Tabulated::from_weights(vec![
        0.02, 0.08, 0.16, 0.22, 0.20, 0.14, 0.09, 0.05, 0.03, 0.01,
    ]);
    let model = DiscreteModel::new(load, AdaptiveExp::paper());
    let cs: Vec<f64> = (1..=24).map(|i| 0.625 * f64::from(i)).collect();
    let swept = bevra::analysis::sweep_grid(&model, &cs, PiEval::Portable);

    let digest = fnv(
        swept
            .k_max
            .iter()
            .map(|k| k.map_or(u64::MAX, |v| v))
            .chain(swept.best_effort.iter().map(|b| b.to_bits()))
            .chain(swept.reservation.iter().map(|r| r.to_bits())),
    );
    assert_eq!(
        digest, 0xA885_60D8_D562_C727,
        "portable sweep bits drifted: digest {digest:#018X}"
    );

    // And the engine path over the portable backend reproduces itself
    // exactly (cache off, grid priming on): determinism within this
    // environment is a prerequisite of determinism across them.
    let again = bevra::analysis::sweep_grid(&model, &cs, PiEval::Portable);
    assert_eq!(swept.best_effort, again.best_effort);
    assert_eq!(swept.reservation, again.reservation);
}

/// `BEVRA_KERNEL` resolution is observable end to end: the health ledger
/// of a checked sweep names the backend that evaluated it.
#[test]
fn health_ledger_names_the_active_backend() {
    let cs = grid();
    for (k, want) in [
        (kernel::scalar(), "scalar"),
        (kernel::batch(), "batch"),
        (kernel::fast(), "fast"),
        (kernel::portable(), "deterministic-portable"),
    ] {
        let checked = SweepEngine::with_mode(model(), ExecMode::Serial)
            .with_kernel(k)
            .sweep_checked(&cs);
        assert_eq!(checked.health.kernel.as_deref(), Some(want));
        assert!(checked.health.is_clean(), "{want}: clean sweep expected");
    }
}
