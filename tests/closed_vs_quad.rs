//! Integration: every closed form transcribed from the paper (§3.3, §4)
//! must agree with independent quadrature evaluation of the same integrals.

use bevra::analysis::continuum::{
    AlgebraicClosed, ContinuumModel, ExponentialRampClosed, ExponentialRigidClosed,
};
use bevra::load::{ExponentialDensity, ParetoDensity};
use bevra::utility::{Ramp, Rigid};

#[test]
fn exponential_rigid_closed_vs_quadrature() {
    let beta = 1.0 / 100.0;
    let closed = ExponentialRigidClosed::new(beta);
    let quad = ContinuumModel::new(ExponentialDensity::new(beta), Rigid::unit());
    for c in [25.0, 100.0, 300.0, 800.0] {
        let (bq, rq) = (quad.best_effort(c).unwrap(), quad.reservation(c).unwrap());
        assert!((closed.best_effort(c) - bq).abs() < 1e-6, "B at {c}");
        assert!((closed.reservation(c) - rq).abs() < 1e-6, "R at {c}");
        assert!((closed.performance_gap(c) - quad.performance_gap(c).unwrap()).abs() < 1e-6);
        let dq = quad.bandwidth_gap(c).unwrap();
        let dc = closed.bandwidth_gap(c).unwrap();
        assert!((dq - dc).abs() < 1e-3 * dc.max(1.0), "Δ at {c}: {dq} vs {dc}");
    }
}

#[test]
fn exponential_ramp_closed_vs_quadrature() {
    let beta = 1.0 / 100.0;
    for a in [0.25, 0.5, 0.9] {
        let closed = ExponentialRampClosed::new(beta, a);
        let quad = ContinuumModel::new(ExponentialDensity::new(beta), Ramp::new(a));
        for c in [50.0, 150.0, 500.0] {
            assert!(
                (closed.best_effort(c) - quad.best_effort(c).unwrap()).abs() < 1e-6,
                "a={a} C={c}"
            );
            assert!(
                (closed.reservation(c) - quad.reservation(c).unwrap()).abs() < 1e-5,
                "a={a} C={c}"
            );
        }
    }
}

#[test]
fn algebraic_closed_vs_quadrature() {
    for (z, a) in [(3.0, 1.0), (2.5, 1.0), (3.0, 0.5), (2.7, 0.3)] {
        let closed =
            if a >= 1.0 { AlgebraicClosed::rigid(z) } else { AlgebraicClosed::ramp(z, a) };
        for c in [2.0, 5.0, 20.0] {
            let (bq, rq) = if a >= 1.0 {
                let quad = ContinuumModel::new(ParetoDensity::new(z), Rigid::unit());
                (quad.best_effort(c).unwrap(), quad.reservation(c).unwrap())
            } else {
                let quad = ContinuumModel::new(ParetoDensity::new(z), Ramp::new(a));
                (quad.best_effort(c).unwrap(), quad.reservation(c).unwrap())
            };
            assert!(
                (closed.best_effort(c) - bq).abs() < 1e-6,
                "z={z} a={a} C={c}: closed {} vs quad {bq}",
                closed.best_effort(c)
            );
            assert!((closed.reservation(c) - rq).abs() < 1e-5, "z={z} a={a} C={c}");
        }
    }
}

#[test]
fn welfare_closed_forms_match_numeric_optimization() {
    // Exponential rigid W_B/W_R against grid optimization of V − pC.
    let beta: f64 = 0.01;
    let closed = ExponentialRigidClosed::new(beta);
    for p in [0.01, 0.05, 0.2] {
        let wb = bevra::analysis::optimal_welfare(
            |c| closed.best_effort(c) / beta,
            p,
            1.0 / beta,
            3e4,
        )
        .unwrap();
        assert!(
            (closed.welfare_best_effort(p) - wb.welfare).abs() < 1e-4 * wb.welfare.max(1.0),
            "p={p}: closed {} vs numeric {}",
            closed.welfare_best_effort(p),
            wb.welfare
        );
    }
    // Algebraic: closed γ is price-independent; verify against the welfare
    // definition directly.
    let m = AlgebraicClosed::rigid(3.0);
    for p in [1e-5, 1e-3] {
        let wb = m.welfare_best_effort(p);
        let wr_at_gamma = m.welfare_reservation(m.gamma() * p);
        assert!((wb - wr_at_gamma).abs() < 1e-10, "p={p}");
    }
}

#[test]
fn gamma_bounded_by_worst_case_e() {
    // §3.3/§4 conjecture: in the basic model γ ≤ e for every z > 2, a ≤ 1.
    for z in [2.05, 2.2, 2.5, 3.0, 4.0, 8.0] {
        for a in [0.2, 0.6, 1.0] {
            let m = AlgebraicClosed::ramp(z, a);
            assert!(
                m.gamma() <= std::f64::consts::E + 1e-9,
                "z={z} a={a}: γ = {}",
                m.gamma()
            );
        }
    }
}
