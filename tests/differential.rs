//! The randomized differential verification suite: every scenario is
//! evaluated through the workspace's redundant computation paths and the
//! results are compared on the tolerance ladder (see
//! `bevra_check::scenario` and EXPERIMENTS.md § "Differential
//! verification").
//!
//! The master seed is the hash of the property name, so CI runs are
//! reproducible; `BEVRA_CHECK_SEED` rotates the corpus and
//! `BEVRA_CHECK_REPLAY=<case seed>` replays one failing case. The
//! long-running randomized driver (`cargo run --release -p bevra-check
//! --bin check-sweep`) runs this exact oracle time-boxed instead of
//! case-counted.

use bevra_check::{check_scenario, check_scenario_sim, Checker, LoadFamily, Scenario,
                  ScenarioStrategy, UtilityFamily};

/// Analytic rungs (discrete model vs memoized engine vs parallel engine
/// vs continuum closed forms) over a randomized scenario corpus. Each
/// scenario costs a few milliseconds in release but tens in debug, so the
/// ambient case count is divided down; `BEVRA_CHECK_CASES` still scales
/// it for soak runs.
#[test]
fn randomized_scenarios_pass_the_analytic_ladder() {
    Checker::new("differential_analytic_ladder")
        .scale_cases(8)
        .run(&ScenarioStrategy::default(), check_scenario);
}

/// The Monte Carlo rung on a small fixed panel: the simulator's measured
/// admission-time utility must match the analytic `B(C)` evaluated on the
/// run's own empirical occupancy (PASTA), within a CLT band. The panel is
/// fixed rather than randomized because each run costs a simulation; the
/// `check-sweep` driver covers the randomized version.
#[test]
fn sim_rung_matches_analytic_on_fixed_panel() {
    let panel = [
        Scenario {
            loads: vec![LoadFamily::Poisson { mean: 25.0 }],
            utility: UtilityFamily::Adaptive,
            capacities: vec![25.0],
            admission_cap: None,
        },
        Scenario {
            loads: vec![LoadFamily::Exponential { mean: 20.0 }],
            utility: UtilityFamily::Rigid,
            capacities: vec![30.0],
            admission_cap: None,
        },
        Scenario {
            loads: vec![LoadFamily::Algebraic { z: 2.5, mean: 15.0 }],
            utility: UtilityFamily::Ramp { a: 0.3 },
            capacities: vec![18.0],
            admission_cap: None,
        },
    ];
    for (i, sc) in panel.iter().enumerate() {
        let seed = rand::derive_seed(0xD1FF, i as u64);
        check_scenario_sim(sc, seed).unwrap_or_else(|e| panic!("panel[{i}] {sc:?}: {e}"));
    }
}
