//! Bitwise determinism of the simulator batch path.
//!
//! `Simulation::run_batch` distributes whole runs across the engine's
//! worker pool; each run's event loop is single-threaded and seeded, so
//! the *digest* of every report — every counter and the bit pattern of
//! every accumulated float, census included — must be identical across
//! repeat batches and across worker counts. The observability layer must
//! also be a pure observer: the metric counters drained after each batch
//! must agree run-for-run.
//!
//! This file deliberately holds a single `#[test]`: it mutates the
//! process-wide `BEVRA_THREADS` variable, and a second concurrent test in
//! the same binary would race it.

use bevra::prelude::*;
use bevra::sim::SimReport;
use std::sync::Arc;

fn batch_configs() -> Vec<SimConfig> {
    let base = |capacity: f64, discipline: Discipline, mixing: RateMixing, seed: u64| SimConfig {
        capacity,
        discipline,
        arrivals: MixedPoisson::new(20.0, mixing, 40.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 50.0,
        horizon: 1500.0,
        seed,
        max_events: None,
    };
    vec![
        base(25.0, Discipline::BestEffort, RateMixing::Fixed, 101),
        base(25.0, Discipline::Reservation { k_max: 22, retry: None }, RateMixing::Fixed, 102),
        base(40.0, Discipline::BestEffort, RateMixing::Exponential, 103),
        SimConfig {
            utility: Arc::new(Rigid::unit()),
            ..base(18.0, Discipline::BestEffort, RateMixing::Fixed, 104)
        },
        base(60.0, Discipline::BestEffort, RateMixing::Pareto { z: 2.3, cap: 1e4 }, 105),
    ]
}

/// One batch under the ambient `BEVRA_THREADS`, returning the per-report
/// digests plus the observability counters the batch incremented.
fn run_once(cfgs: &[SimConfig]) -> (Vec<u64>, bevra::obs::metrics::MetricsSnapshot) {
    bevra::obs::metrics::reset_all();
    let digests = Simulation::run_batch(cfgs).iter().map(SimReport::digest).collect();
    let drained = bevra::obs::metrics::snapshot();
    bevra::obs::metrics::reset_all();
    (digests, drained)
}

#[test]
fn run_batch_is_bitwise_deterministic_across_thread_counts() {
    // Force metric recording on so the drained counters are a real signal
    // (the default `BEVRA_OBS=off` would make the snapshots trivially
    // empty and the observer-purity half of the test vacuous).
    bevra::obs::set_level(bevra::obs::ObsLevel::Summary);
    let cfgs = batch_configs();

    // Same seed, same thread count: digests and drained counters equal.
    std::env::set_var("BEVRA_THREADS", "1");
    let (serial_a, obs_serial_a) = run_once(&cfgs);
    let (serial_b, obs_serial_b) = run_once(&cfgs);
    assert_eq!(serial_a, serial_b, "two serial batches with equal seeds must match bitwise");
    assert_eq!(obs_serial_a, obs_serial_b, "obs counters must replay with the batch");
    assert!(
        obs_serial_a.counters.iter().any(|(k, v)| k == "sim/events/arrival" && *v > 0),
        "summary level must actually record events: {:?}",
        obs_serial_a.counters
    );

    // Same seed, five workers: still bitwise-identical to the serial
    // batch, report for report, and the event totals drain the same.
    std::env::set_var("BEVRA_THREADS", "5");
    let (par_a, obs_par_a) = run_once(&cfgs);
    let (par_b, obs_par_b) = run_once(&cfgs);
    std::env::set_var("BEVRA_THREADS", "1");
    assert_eq!(par_a, par_b, "two 5-thread batches with equal seeds must match bitwise");
    assert_eq!(obs_par_a, obs_par_b, "obs counters must replay across 5-thread batches");
    assert_eq!(serial_a, par_a, "worker count must not change any report bit");
    assert_eq!(obs_serial_a, obs_par_a, "worker count must not change drained counters");

    // Sanity: distinct configurations do produce distinct digests, so the
    // equalities above are not comparing constants.
    let mut unique = serial_a.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), cfgs.len(), "digests must differ across configs: {serial_a:?}");

    fleet_digest_is_shard_count_invariant_at_scale();
}

/// Sharded-fleet half of the determinism wall (called from the single
/// `#[test]` above — it also mutates `BEVRA_THREADS`): a ~1M-flow fleet
/// must produce the *same* merged digest, the same per-lane digests, and
/// the same drained obs counters for every shard count and queue backend,
/// and repeat runs must replay bitwise. The config deliberately spans four
/// lanes so shard counts {1, 2, 5, 16} exercise lanes-per-shard ratios
/// above, at, and below one (16 shards > 4 lanes degrades to one lane per
/// shard plus idle capacity — `chunk_ranges` never emits empty shards).
fn fleet_digest_is_shard_count_invariant_at_scale() {
    use bevra::sim::{Fleet, FleetConfig, QueueKind};

    // Four lanes × (rate 2500 × horizon 100) ≈ 1M flow arrivals ≈ 2.1M
    // events per fleet run — big enough that a lost event or a reordered
    // merge cannot hide, small enough for a debug-build tier-1 budget.
    let fleet = Fleet::new(FleetConfig {
        base: SimConfig {
            capacity: 3000.0,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::new(2500.0, RateMixing::Fixed, 5000.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 5.0,
            horizon: 100.0,
            seed: 0xF1EE7,
            max_events: None,
        },
        lanes: 4,
    });
    let run = |shards: usize, queue: QueueKind| {
        bevra::obs::metrics::reset_all();
        let report = fleet.run_on(shards, queue);
        let mut counters = bevra::obs::metrics::snapshot().counters;
        bevra::obs::metrics::reset_all();
        // Gauges (events/sec) are timing-dependent by design; counters are
        // the deterministic slice of the obs stream.
        counters.sort();
        (report, counters)
    };

    std::env::set_var("BEVRA_THREADS", "3");
    let (reference, reference_counters) = run(1, QueueKind::Wheel);
    assert!(reference.health.all_ok(), "clean fleet run must be healthy");
    assert!(reference.merged.events > 2_000_000, "scale floor: {} events", reference.merged.events);
    assert_eq!(reference.lane_digests.len(), 4);
    // Committed pin (CI's sim-scale job runs this at scale in release):
    // the merged million-flow digest is a constant of the codebase, not
    // merely self-consistent across shardings.
    assert_eq!(
        reference.merged.digest(),
        0xBE25_1F1D_BB9E_A0D0,
        "million-flow merged digest drifted from the committed pin"
    );
    for (shards, queue) in
        [(1, QueueKind::Heap), (2, QueueKind::Wheel), (5, QueueKind::Wheel), (16, QueueKind::Wheel)]
    {
        let (report, counters) = run(shards, queue);
        assert_eq!(
            report.merged.digest(),
            reference.merged.digest(),
            "merged digest changed at {shards} shard(s) on {queue:?}"
        );
        assert_eq!(
            report.lane_digests, reference.lane_digests,
            "per-lane digests changed at {shards} shard(s) on {queue:?}"
        );
        assert_eq!(
            counters, reference_counters,
            "obs counters changed at {shards} shard(s) on {queue:?}"
        );
    }
    // Repeat at a mid shard count: bitwise replay, not merely agreement.
    let (again, again_counters) = run(5, QueueKind::Wheel);
    assert_eq!(again.merged.digest(), reference.merged.digest(), "5-shard repeat did not replay");
    assert_eq!(again_counters, reference_counters, "5-shard repeat drained different counters");
    std::env::set_var("BEVRA_THREADS", "1");
}
