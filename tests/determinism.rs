//! Bitwise determinism of the simulator batch path.
//!
//! `Simulation::run_batch` distributes whole runs across the engine's
//! worker pool; each run's event loop is single-threaded and seeded, so
//! the *digest* of every report — every counter and the bit pattern of
//! every accumulated float, census included — must be identical across
//! repeat batches and across worker counts. The observability layer must
//! also be a pure observer: the metric counters drained after each batch
//! must agree run-for-run.
//!
//! This file deliberately holds a single `#[test]`: it mutates the
//! process-wide `BEVRA_THREADS` variable, and a second concurrent test in
//! the same binary would race it.

use bevra::prelude::*;
use bevra::sim::SimReport;
use std::sync::Arc;

fn batch_configs() -> Vec<SimConfig> {
    let base = |capacity: f64, discipline: Discipline, mixing: RateMixing, seed: u64| SimConfig {
        capacity,
        discipline,
        arrivals: MixedPoisson::new(20.0, mixing, 40.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 50.0,
        horizon: 1500.0,
        seed,
        max_events: None,
    };
    vec![
        base(25.0, Discipline::BestEffort, RateMixing::Fixed, 101),
        base(25.0, Discipline::Reservation { k_max: 22, retry: None }, RateMixing::Fixed, 102),
        base(40.0, Discipline::BestEffort, RateMixing::Exponential, 103),
        SimConfig {
            utility: Arc::new(Rigid::unit()),
            ..base(18.0, Discipline::BestEffort, RateMixing::Fixed, 104)
        },
        base(60.0, Discipline::BestEffort, RateMixing::Pareto { z: 2.3, cap: 1e4 }, 105),
    ]
}

/// One batch under the ambient `BEVRA_THREADS`, returning the per-report
/// digests plus the observability counters the batch incremented.
fn run_once(cfgs: &[SimConfig]) -> (Vec<u64>, bevra::obs::metrics::MetricsSnapshot) {
    bevra::obs::metrics::reset_all();
    let digests = Simulation::run_batch(cfgs).iter().map(SimReport::digest).collect();
    let drained = bevra::obs::metrics::snapshot();
    bevra::obs::metrics::reset_all();
    (digests, drained)
}

#[test]
fn run_batch_is_bitwise_deterministic_across_thread_counts() {
    // Force metric recording on so the drained counters are a real signal
    // (the default `BEVRA_OBS=off` would make the snapshots trivially
    // empty and the observer-purity half of the test vacuous).
    bevra::obs::set_level(bevra::obs::ObsLevel::Summary);
    let cfgs = batch_configs();

    // Same seed, same thread count: digests and drained counters equal.
    std::env::set_var("BEVRA_THREADS", "1");
    let (serial_a, obs_serial_a) = run_once(&cfgs);
    let (serial_b, obs_serial_b) = run_once(&cfgs);
    assert_eq!(serial_a, serial_b, "two serial batches with equal seeds must match bitwise");
    assert_eq!(obs_serial_a, obs_serial_b, "obs counters must replay with the batch");
    assert!(
        obs_serial_a.counters.iter().any(|(k, v)| k == "sim/events/arrival" && *v > 0),
        "summary level must actually record events: {:?}",
        obs_serial_a.counters
    );

    // Same seed, five workers: still bitwise-identical to the serial
    // batch, report for report, and the event totals drain the same.
    std::env::set_var("BEVRA_THREADS", "5");
    let (par_a, obs_par_a) = run_once(&cfgs);
    let (par_b, obs_par_b) = run_once(&cfgs);
    std::env::set_var("BEVRA_THREADS", "1");
    assert_eq!(par_a, par_b, "two 5-thread batches with equal seeds must match bitwise");
    assert_eq!(obs_par_a, obs_par_b, "obs counters must replay across 5-thread batches");
    assert_eq!(serial_a, par_a, "worker count must not change any report bit");
    assert_eq!(obs_serial_a, obs_par_a, "worker count must not change drained counters");

    // Sanity: distinct configurations do produce distinct digests, so the
    // equalities above are not comparing constants.
    let mut unique = serial_a.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), cfgs.len(), "digests must differ across configs: {serial_a:?}");
}
