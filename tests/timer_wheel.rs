//! Property wall around the timer-wheel event queue.
//!
//! The wheel ([`bevra::sim::TimerWheelQueue`]) replaced the binary heap in
//! the simulator's hot loop; the simulator's digests are only trustworthy
//! if the wheel's dequeue order is *exactly* the heap's `(time, seq)`
//! total order. The randomized equivalence property here drives both
//! queues through the same push/pop stream — same-timestamp ties,
//! far-future times that overflow the wheel's covered horizon, pops
//! interleaved with pushes so the cursor advances mid-stream — across
//! several granularities, and demands bit-identical pop sequences.
//!
//! The second half is a mutation test: a deliberately wrong wheel (level-0
//! bucket index XOR'd by one, the classic off-by-one-slot bug, injected
//! via a `#[doc(hidden)]` hook) must be *caught* by the same property and
//! the counterexample must *shrink* to a minimal witness — a handful of
//! events, not the original random soup. This checks the test wall itself:
//! the property has teeth, and the shrinker makes its failures readable.

use bevra::sim::events::{Entry, EventKind};
use bevra::sim::queue::{BinaryHeapQueue, EventQueue};
use bevra::sim::TimerWheelQueue;
use bevra_check::{choice, ensure, int_range, vec_of, Checker};

/// Build the event stream from raw codes: `time = code / 8 × scale`, so
/// repeated codes collide to exact same-timestamp ties (seq must break
/// them), and the scale choice stretches the stream from sub-granularity
/// spacings (`1.0`) through mid-wheel levels (`1e7`) to far beyond the
/// three-level covered range (`1e13` — lands in the overflow list).
fn stream(codes: &[(u64, f64)]) -> Vec<Entry> {
    codes
        .iter()
        .enumerate()
        .map(|(i, &(code, scale))| Entry {
            time: code as f64 / 8.0 * scale,
            seq: i as u64,
            kind: match i % 3 {
                0 => EventKind::Arrival,
                1 => EventKind::ModulationSwitch,
                _ => EventKind::Departure { slot: i as u32 },
            },
        })
        .collect()
}

/// Push the stream into both queues, popping every third push so the
/// wheel's cursor advances while later (and possibly *earlier-timed*)
/// events are still arriving, then drain; fail on the first divergence in
/// the popped `(time-bits, seq)` sequence or on a length mismatch.
fn equivalent_on(events: &[Entry], granularity: f64) -> Result<(), String> {
    let mut wheel = TimerWheelQueue::with_granularity(granularity);
    let mut heap = BinaryHeapQueue::new();
    let mut popped = 0usize;
    let mut check_pop = |wheel: &mut TimerWheelQueue,
                         heap: &mut BinaryHeapQueue|
     -> Result<(), String> {
        let w = wheel.pop();
        let h = heap.pop();
        let key = |e: &Entry| (e.time.to_bits(), e.seq);
        popped += 1;
        ensure(w.as_ref().map(key) == h.as_ref().map(key), || {
            format!(
                "pop #{popped} diverged at granularity {granularity}: wheel {w:?} vs heap {h:?}"
            )
        })
    };
    for (i, e) in events.iter().enumerate() {
        wheel.push(*e);
        heap.push(*e);
        if i % 3 == 2 {
            check_pop(&mut wheel, &mut heap)?;
        }
    }
    ensure(wheel.len() == heap.len(), || {
        format!("len diverged: wheel {} vs heap {}", wheel.len(), heap.len())
    })?;
    while !heap.is_empty() {
        check_pop(&mut wheel, &mut heap)?;
    }
    ensure(wheel.pop().is_none(), || "wheel still had events after the heap drained".into())
}

/// The wheel's dequeue order equals the heap's on randomized streams with
/// ties, rollover, overflow, and interleaved pops — at the production
/// granularity, a coarse one (many ties per bucket), and a very fine one
/// (events scattered across all levels and the overflow list).
#[test]
fn wheel_matches_heap_on_randomized_streams() {
    let strategy = vec_of(
        (int_range(0, 400), choice(vec![1.0f64, 1e7, 1e13])),
        0,
        60,
    );
    Checker::new("wheel_matches_heap_on_randomized_streams").run(&strategy, |codes| {
        let events = stream(codes);
        for granularity in [bevra::sim::wheel::DEFAULT_GRANULARITY, 0.125, 1e-6] {
            equivalent_on(&events, granularity)?;
        }
        Ok(())
    });
}

/// Mutation test: with the level-0 slot index XOR'd by 1 the property must
/// fail, and the shrinker must reduce the counterexample to a minimal
/// witness. Two events in adjacent level-0 buckets are swapped by the
/// nudge, so the minimal witness is tiny; accepting up to three events
/// leaves slack for shrink-step budgets without admitting an unshrunk
/// original. A wall that cannot detect a seeded bug, or that reports it
/// as forty random events, would be dead weight — this pins both halves.
#[test]
fn seeded_off_by_one_slot_is_falsified_and_shrunk_to_minimal_witness() {
    let panic_payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Granularity 1/8 makes `tick == code`, so distinct codes land in
        // distinct level-0 buckets and the nudge has somewhere to bite.
        Checker::new("wheel_mutation_off_by_one").cases(64).seed(0xB16_B06).run(
            &vec_of(int_range(0, 200), 0, 40),
            |codes| {
                let pairs: Vec<(u64, f64)> = codes.iter().map(|&c| (c, 1.0)).collect();
                let events = stream(&pairs);
                let mut wheel = TimerWheelQueue::with_granularity(0.125).with_slot_nudge(1);
                let mut heap = BinaryHeapQueue::new();
                for e in &events {
                    wheel.push(*e);
                    heap.push(*e);
                }
                let mut step = 0usize;
                while let Some(h) = heap.pop() {
                    let w = wheel.pop();
                    step += 1;
                    ensure(w.map(|e| (e.time.to_bits(), e.seq)) == Some((h.time.to_bits(), h.seq)), || {
                        format!("pop #{step}: nudged wheel {w:?} vs heap {h:?}")
                    })?;
                }
                Ok(())
            },
        );
    }))
    .expect_err("a wheel with an off-by-one bucket index must be falsified");

    let message = panic_payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic_payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("checker panics carry a string payload");
    assert!(
        message.contains("falsified"),
        "panic was not a property falsification: {message}"
    );

    // The shrunk witness is printed as `shrunk (...): [codes]`; extract the
    // bracketed vector and count its elements.
    let witness = message
        .split("eval(s)): ")
        .nth(1)
        .and_then(|rest| rest.split("\n  error:").next())
        .unwrap_or_else(|| panic!("no shrunk witness in panic message: {message}"));
    let inner = witness
        .trim()
        .strip_prefix('[')
        .and_then(|w| w.strip_suffix(']'))
        .unwrap_or_else(|| panic!("witness is not a vector literal: {witness}"));
    let len =
        if inner.trim().is_empty() { 0 } else { inner.split(',').count() };
    assert!(
        (1..=3).contains(&len),
        "shrinker should reduce the off-by-one witness to ≤3 events, got {len}: {witness}"
    );
}

/// Exotic-but-legal timestamps survive a round trip in (time, seq) order:
/// negative times, `-0.0` vs `+0.0` (which `total_cmp` orders as
/// `-0.0 < +0.0` despite comparing `==`), and both infinities.
/// The simulator never schedules these, but the queue trait makes no such
/// promise, and the differential wall should hold on the full domain.
#[test]
fn wheel_handles_exotic_timestamps_like_the_heap() {
    let times = [
        f64::NEG_INFINITY,
        -1.5e300,
        -3.0,
        -0.0,
        0.0,
        5e-324,
        1.0,
        1.0,
        1e308,
        f64::INFINITY,
    ];
    let events: Vec<Entry> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| Entry { time: t, seq: (times.len() - i) as u64, kind: EventKind::Arrival })
        .collect();
    for granularity in [bevra::sim::wheel::DEFAULT_GRANULARITY, 1e-9] {
        equivalent_on(&events, granularity).unwrap_or_else(|e| panic!("{e}"));
    }
}
