//! Integration: the §5 "other extensions" — heterogeneous flows,
//! risk-averse users, nonstationary (mixture) loads — must perturb the
//! `C ≈ k̄` region while leaving the asymptotic regime shapes intact, and
//! footnote 9's elastic-with-cap-and-retries effect must materialize.

use bevra::analysis::heterogeneous::{mix_loads, FlowClass, HeterogeneousModel, RiskAverseModel};
use bevra::analysis::retrying::{GeometricFamily, RetryModel};
use bevra::analysis::{performance_gap, DiscreteModel};
use bevra::load::{Algebraic, Geometric, Poisson, Tabulated};
use bevra::utility::{AdaptiveExp, ExponentialElastic, Rigid};
use std::sync::Arc;

/// Heterogeneity does not break the algebraic load's linear bandwidth gap.
#[test]
fn heterogeneous_algebraic_gap_stays_linear() {
    let load = Tabulated::from_model(
        &Algebraic::from_mean(3.0, 100.0).unwrap(),
        1e-8,
        1 << 19,
    );
    let het = HeterogeneousModel::new(
        load,
        vec![
            FlowClass { weight: 0.6, size: 1.0, utility: Arc::new(Rigid::unit()) },
            FlowClass { weight: 0.4, size: 3.0, utility: Arc::new(Rigid::new(3.0)) },
        ],
    );
    let d4 = het.bandwidth_gap(400.0).unwrap();
    let d8 = het.bandwidth_gap(800.0).unwrap();
    let slope = (d8 - d4) / 400.0;
    assert!(
        (0.5..=1.5).contains(&slope),
        "heterogeneous algebraic slope stays O(1): {slope} (Δ {d4} → {d8})"
    );
}

/// Risk aversion perturbs mid-capacities strongly but the exponential-load
/// gap still vanishes at large C (the §5 summary sentence).
#[test]
fn risk_aversion_perturbs_midrange_not_asymptote() {
    let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 18);
    let neutral = RiskAverseModel::new(load.clone(), AdaptiveExp::paper(), 10, 0.0);
    let averse = RiskAverseModel::new(load, AdaptiveExp::paper(), 10, 1.0);
    let mid = 150.0;
    assert!(
        averse.performance_gap(mid) > 5.0 * neutral.performance_gap(mid),
        "risk aversion blows up the mid-range gap: {} vs {}",
        averse.performance_gap(mid),
        neutral.performance_gap(mid)
    );
    let far = 900.0;
    assert!(
        averse.performance_gap(far) < 0.1 * averse.performance_gap(mid),
        "…but the exponential asymptote still dies: {} vs {}",
        averse.performance_gap(far),
        averse.performance_gap(mid)
    );
}

/// Mixture (nonstationary) loads: a 2-regime day/night mixture of Poissons
/// behaves like a higher-variance load — bigger mid-range gap than the
/// matched-mean Poisson, same vanishing tail.
#[test]
fn mixture_load_increases_midrange_gap() {
    let night = Tabulated::from_model(&Poisson::new(30.0), 1e-12, 1 << 14);
    let day = Tabulated::from_model(&Poisson::new(170.0), 1e-12, 1 << 14);
    let mixed = mix_loads(&[(0.5, &night), (0.5, &day)]);
    let matched = Tabulated::from_model(&Poisson::new(mixed.mean()), 1e-12, 1 << 14);

    let m_mix = DiscreteModel::new(mixed, Rigid::unit());
    let m_poi = DiscreteModel::new(matched, Rigid::unit());
    let c = 120.0;
    assert!(
        performance_gap(&m_mix, c) > 3.0 * performance_gap(&m_poi, c),
        "mixture gap {} vs Poisson gap {}",
        performance_gap(&m_mix, c),
        performance_gap(&m_poi, c)
    );
    // Deep overprovisioning still erases it.
    assert!(performance_gap(&m_mix, 600.0) < 1e-6);
}

/// Footnote 9: with *elastic* applications a reservation network can only
/// differ from best-effort via an imposed cap; a bare cap hurts, but a cap
/// plus retries (delayed admission at a better share, modest penalty) can
/// deliver higher per-flow utility than best-effort sharing.
#[test]
fn footnote9_elastic_cap_with_retries() {
    let kbar = 60.0;
    let c = 50.0;
    let cap = 100u64; // mild cap: blocks only genuine load spikes
    let elastic = ExponentialElastic::new(1.0);

    // Bare cap, no retries: blocked flows score zero, utility drops below
    // best-effort (the §2 result that elastic apps never want admission
    // control in the basic model).
    let load = Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 16);
    let capped = DiscreteModel::new(load.clone(), elastic).with_admission_cap(cap);
    let uncapped = DiscreteModel::new(load, elastic);
    assert!(capped.reservation(c) < uncapped.best_effort(c));

    // Cap + retries at a small penalty: every flow is eventually served at
    // the protected share C/min(k, cap) ≥ C/cap, so per-flow utility beats
    // best-effort sharing (measured: 0.485 vs 0.440 here).
    let rm = RetryModel::new(GeometricFamily::new(1e-12, 1 << 16), elastic, kbar, 0.005)
        .with_admission_cap(cap);
    let out = rm.evaluate(c).expect("fixed point converges");
    let b = rm.best_effort(c);
    assert!(
        out.reservation > b + 0.02,
        "footnote 9: capped-elastic with retries {} must beat best-effort {}",
        out.reservation,
        b
    );
}
