//! Integration: measured curves must approach the paper's asymptotic laws.

use bevra::analysis::asymptotics;
use bevra::analysis::continuum::{AlgebraicClosed, ExponentialRampClosed, ExponentialRigidClosed};
use bevra::analysis::{bandwidth_gap, DiscreteModel, SamplingModel};
use bevra::load::{Geometric, Tabulated};
use bevra::utility::{AdaptiveExp, Ramp, Rigid};

#[test]
fn exponential_rigid_gap_approaches_log_law() {
    let closed = ExponentialRigidClosed::new(0.01);
    // Δ(C)/[ln(βC)/β] → 1.
    for (c, tol) in [(1e4, 0.06), (1e6, 0.02), (1e8, 0.01)] {
        let d = closed.bandwidth_gap(c).unwrap();
        let asym = asymptotics::exp_rigid_bandwidth_gap(0.01, c);
        assert!((d / asym - 1.0).abs() < tol, "C={c}: {d} vs {asym}");
    }
}

#[test]
fn exponential_ramp_gap_approaches_constant() {
    for a in [0.3, 0.7, 0.95] {
        let closed = ExponentialRampClosed::new(0.01, a);
        let limit = asymptotics::exp_ramp_bandwidth_gap_limit(0.01, a);
        let d = closed.bandwidth_gap(1e5).unwrap();
        assert!((d - limit).abs() < 1e-3 * limit, "a={a}: {d} vs {limit}");
    }
}

#[test]
fn algebraic_ratio_matches_h_power_law() {
    for z in [2.2, 2.5, 3.0, 4.0] {
        for a in [0.4, 1.0] {
            let h = Ramp::new(a).h_coefficient(z);
            let closed =
                if a >= 1.0 { AlgebraicClosed::rigid(z) } else { AlgebraicClosed::ramp(z, a) };
            let predicted = asymptotics::alg_gap_ratio(z, h);
            let measured = 1.0 + closed.bandwidth_gap(100.0) / 100.0;
            assert!((measured - predicted).abs() < 1e-9, "z={z} a={a}");
            // And γ equals the same constant (the §4 correspondence).
            assert!((closed.gamma() - predicted).abs() < 1e-9);
        }
    }
}

#[test]
fn discrete_sampling_ratio_grows_toward_prediction() {
    // For the discrete exponential model, verify at least the *ordering*
    // predicted by (S·H)^{1/(z−2)}-style growth: the sampling bandwidth gap
    // is increasing in S at every capacity.
    let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20);
    let c = 150.0;
    let mut prev = -1.0;
    for s in [1u32, 2, 4, 8] {
        let sm = SamplingModel::new(
            DiscreteModel::new(load.clone(), AdaptiveExp::paper()),
            s,
        );
        let d = sm.bandwidth_gap(c).unwrap();
        assert!(d > prev, "S={s}: gap {d} must increase");
        prev = d;
    }
}

#[test]
fn retry_ratio_unbounded_near_z_two() {
    // §5.2: with retries the asymptotic ratio (H/α)^{1/(z−2)} diverges as
    // z → 2⁺ — unlike the basic model's e bound.
    let alpha = 0.1;
    let at = |z: f64| asymptotics::alg_retry_gap_ratio(z, z - 1.0, alpha);
    assert!(at(3.0) > std::f64::consts::E, "already beyond e at z = 3");
    assert!(at(2.2) > at(2.5));
    assert!(at(2.05) > 1e10, "divergence near z = 2: {}", at(2.05));
}

#[test]
fn sampling_ratio_unbounded_near_z_two() {
    let at = |z: f64, s: u32| asymptotics::alg_sampling_gap_ratio(z, z - 1.0, s);
    assert!((at(3.0, 1) - 2.0).abs() < 1e-12, "S = 1 recovers the basic ratio");
    assert!(at(2.1, 2) > 1e3);
    assert!(at(2.02, 2) > 1e15);
}

#[test]
fn basic_model_never_exceeds_e() {
    // Sweep the basic model's parameter space; the e bound must hold.
    let e = std::f64::consts::E;
    for i in 1..60 {
        let z = 2.0 + f64::from(i) * 0.1;
        for a in [0.1, 0.5, 0.9, 1.0] {
            let h = Ramp::new(a).h_coefficient(z);
            assert!(asymptotics::alg_gap_ratio(z, h) <= e + 1e-9, "z={z} a={a}");
        }
    }
}

#[test]
fn rigid_gap_exceeds_every_adaptive_gap() {
    // H(a, z) is increasing in a with maximum H(1, z) = z−1, so the rigid
    // asymptotic ratio dominates all ramp ratios at the same z.
    for z in [2.3, 3.0, 5.0] {
        let rigid = asymptotics::alg_gap_ratio(z, z - 1.0);
        for a in [0.1, 0.4, 0.8, 0.99] {
            let ramp = asymptotics::alg_gap_ratio(z, Ramp::new(a).h_coefficient(z));
            assert!(ramp <= rigid + 1e-12, "z={z} a={a}");
        }
    }
}

#[test]
fn discrete_exponential_gap_between_asymptote_and_double() {
    // The measured discrete Δ should track the closed-form transcendental
    // within a few percent at figure capacities.
    let kbar = 100.0;
    let load = Tabulated::from_model(&Geometric::from_mean(kbar), 1e-13, 1 << 20);
    let m = DiscreteModel::new(load, Rigid::unit());
    let closed = ExponentialRigidClosed::from_mean(kbar);
    for c in [200.0, 400.0, 800.0] {
        let d = bandwidth_gap(&m, c).unwrap();
        let dc = closed.bandwidth_gap(c).unwrap();
        assert!((d - dc).abs() < 0.03 * dc, "C={c}: discrete {d} vs closed {dc}");
    }
}
