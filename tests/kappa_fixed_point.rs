//! Regression pin on the paper's adaptive-utility constant κ = 0.62086.
//!
//! Section 3.2 of the paper chooses κ in `π(r) = 1 − e^{−κr}` so that a
//! reservation system prefers to admit flows right up to `k = C`: the
//! per-capacity optimum `k_max(C) = argmax_k k·π(C/k)` lands exactly on
//! the capacity. That fixed point is what makes the best-effort versus
//! reservation comparison of the two disciplines "fair" — neither is
//! handicapped by a utility that wants more or fewer flows than the link
//! nominally fits. These tests pin the property across four decades of
//! capacity and verify it is *sharp*: nudging κ by ±10⁻³ already tips
//! `k_max(1000)` off 1000, so any future drift in the constant (or in the
//! argmax search it feeds) fails loudly.

use bevra::analysis::DiscreteModel;
use bevra::load::{Poisson, Tabulated};
use bevra::utility::AdaptiveExp;

/// `k_max(C)` for an `AdaptiveExp(kappa)` utility under a load whose tail
/// reaches far past `C`, so the argmax is interior and load-independent.
fn k_max(kappa: f64, capacity: f64) -> u64 {
    // k_max depends only on the utility's V(k) = k·π(C/k); the load table
    // just has to put mass above the candidate range. Mean 2C does that
    // for every capacity probed here.
    let load = Tabulated::from_model(&Poisson::new(2.0 * capacity), 1e-12, 1 << 14);
    DiscreteModel::new(load, AdaptiveExp::new(kappa))
        .k_max(capacity)
        .unwrap_or_else(|| panic!("k_max(kappa={kappa}, C={capacity}) must exist"))
}

const PAPER_KAPPA: f64 = 0.62086;

#[test]
fn paper_kappa_puts_k_max_on_the_capacity() {
    for c in [1.0_f64, 10.0, 100.0, 1000.0] {
        assert_eq!(
            k_max(PAPER_KAPPA, c),
            c.round() as u64,
            "kappa = {PAPER_KAPPA} must give k_max(C) = C at C = {c}"
        );
    }
    // The constructor's `paper()` preset is the same constant.
    assert_eq!(AdaptiveExp::paper().kappa, PAPER_KAPPA);
}

#[test]
fn kappa_pin_is_sharp_to_a_part_in_a_thousand() {
    // At C = 1000 the argmax resolves κ to better than ±1e-3: a larger κ
    // saturates utility sooner, so fewer flows maximize k·π(C/k); a
    // smaller κ rewards admitting extra flows.
    assert!(
        k_max(PAPER_KAPPA + 1e-3, 1000.0) < 1000,
        "kappa + 1e-3 must pull k_max(1000) below 1000"
    );
    assert!(
        k_max(PAPER_KAPPA - 1e-3, 1000.0) > 1000,
        "kappa - 1e-3 must push k_max(1000) above 1000"
    );
}
